package core

import "math"

// zQuantile returns the standard normal quantile z_p with Φ(z_p) = p,
// computed with the Beasley-Springer-Moro rational approximation
// (absolute error below 3e-9 over (0,1)). The confidence intervals of
// §4.1 need z_α for arbitrary confidence levels; the paper reads them
// from standardized normal tables.
func zQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var z float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return z
}

// ZForConfidence returns z_α for a two-sided confidence level α in (0,1):
// the half-width multiplier such that P(|Z| ≤ z) = α.
func ZForConfidence(alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 {
		return math.Inf(1)
	}
	return zQuantile(0.5 + alpha/2)
}
