package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/storage"
)

// ---- helpers ----

// table builds a storage table named name with int columns given by cols
// (parallel slices of values).
func table(name string, colNames []string, cols ...[]int64) *storage.Table {
	dcols := make([]data.Column, len(colNames))
	for i, n := range colNames {
		dcols[i] = data.Column{Table: name, Name: n, Kind: data.KindInt}
	}
	t := storage.NewTable(name, data.NewSchema(dcols...))
	for r := 0; r < len(cols[0]); r++ {
		tu := make(data.Tuple, len(cols))
		for c := range cols {
			tu[c] = data.Int(cols[c][r])
		}
		t.MustAppend(tu)
	}
	return t
}

func randCol(rng *rand.Rand, n, domain int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(domain) + 1)
	}
	return out
}

// ---- FreqHistogram ----

func TestFreqHistogramBasics(t *testing.T) {
	h := NewFreqHistogram()
	h.Add(data.Int(1))
	h.Add(data.Int(1))
	h.Add(data.Int(2))
	h.AddN(data.Int(3), 5)
	h.Add(data.Null()) // ignored
	if h.Count(data.Int(1)) != 2 || h.Count(data.Int(3)) != 5 {
		t.Errorf("counts wrong: %d, %d", h.Count(data.Int(1)), h.Count(data.Int(3)))
	}
	if h.Distinct() != 3 {
		t.Errorf("Distinct = %d", h.Distinct())
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(data.Int(99)) != 0 {
		t.Error("missing value should count 0")
	}
}

func TestFreqHistogramProfileAndTopK(t *testing.T) {
	h := NewFreqHistogram()
	for i := 0; i < 3; i++ {
		h.Add(data.Int(7))
	}
	h.Add(data.Int(1))
	h.Add(data.Int(2))
	f := h.FrequencyOfFrequencies()
	if f[1] != 2 || f[3] != 1 {
		t.Errorf("profile = %v", f)
	}
	top := h.TopK(1)
	if len(top) != 1 || top[0].Value.I != 7 || top[0].Count != 3 {
		t.Errorf("TopK = %v", top)
	}
}

// TestFreqHistogramTrackedProfileMatchesRescan drives a tracked histogram
// through a random mixed workload — int and string keys, unit adds,
// weighted adds including the negative deltas derived Case 2 histograms
// can apply — and checks after every step that the incrementally
// maintained profile is identical to a from-scratch rescan, including
// after late TrackProfile back-fill.
func TestFreqHistogramTrackedProfileMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lateTrack := range []bool{false, true} {
		h := NewFreqHistogram()
		if !lateTrack {
			h.TrackProfile()
		}
		for step := 0; step < 4000; step++ {
			if lateTrack && step == 2000 {
				h.TrackProfile()
			}
			var v data.Value
			if rng.Intn(4) == 0 {
				v = data.Str([]string{"a", "b", "c"}[rng.Intn(3)])
			} else {
				v = data.Int(int64(rng.Intn(64)))
			}
			switch rng.Intn(3) {
			case 0:
				h.Add(v)
			case 1:
				h.AddN(v, int64(1+rng.Intn(8)))
			default:
				// Only drive a count negative-ward if it stays ≥ 0.
				if c := h.Count(v); c > 1 {
					h.AddN(v, -1)
				} else {
					h.Add(v)
				}
			}
			if step%97 == 0 || step >= 3990 {
				want := h.FrequencyOfFrequencies()
				got := h.Profile()
				if len(got) != len(want) {
					t.Fatalf("lateTrack=%v step %d: profile has %d counts, rescan %d: %v vs %v",
						lateTrack, step, len(got), len(want), got, want)
				}
				for j, n := range want {
					if got[j] != n {
						t.Fatalf("lateTrack=%v step %d: profile[%d] = %d, rescan %d",
							lateTrack, step, j, got[j], n)
					}
				}
			}
		}
	}
}

func TestFreqHistogramMemoryScalesLinearly(t *testing.T) {
	h := NewFreqHistogram()
	for i := int64(0); i < 1000; i++ {
		h.Add(data.Int(i))
	}
	used, alloc := h.MemoryUsed(), h.MemoryAllocated()
	if used != 8000 {
		t.Errorf("MemoryUsed = %d, want 8000 (8 B/entry × 1000)", used)
	}
	if alloc <= used {
		t.Errorf("MemoryAllocated %d should exceed MemoryUsed %d", alloc, used)
	}
	h2 := NewFreqHistogram()
	for i := int64(0); i < 10000; i++ {
		h2.Add(data.Int(i))
	}
	if got := h2.MemoryUsed(); got != 10*used {
		t.Errorf("memory should scale linearly: %d vs 10×%d", got, used)
	}
}

func TestFreqHistogramEachStops(t *testing.T) {
	h := NewFreqHistogram()
	h.Add(data.Int(1))
	h.Add(data.Int(2))
	n := 0
	h.Each(func(data.Value, int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each visited %d entries after early stop", n)
	}
}

// ---- normal quantiles ----

func TestZQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.9999, 3.719016},
	}
	for _, c := range cases {
		if got := zQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("zQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(zQuantile(0), -1) || !math.IsInf(zQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
}

func TestZForConfidence(t *testing.T) {
	if got := ZForConfidence(0.95); math.Abs(got-1.96) > 0.01 {
		t.Errorf("z(95%%) = %g", got)
	}
	if got := ZForConfidence(0.9999); math.Abs(got-3.89) > 0.01 {
		t.Errorf("z(99.99%%) = %g (paper's 'Z_α = 4' is a rounding)", got)
	}
	if ZForConfidence(0) != 0 {
		t.Error("z(0) should be 0")
	}
}

func TestZQuantileSymmetric(t *testing.T) {
	f := func(raw uint16) bool {
		p := 0.001 + 0.998*float64(raw)/65535
		return math.Abs(zQuantile(p)+zQuantile(1-p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---- JoinEstimator ----

func TestJoinEstimatorConvergesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := randCol(rng, 500, 40)
	probe := randCol(rng, 800, 40)
	counts := map[int64]int64{}
	for _, v := range build {
		counts[v]++
	}
	var truth int64
	for _, v := range probe {
		truth += counts[v]
	}
	e := NewJoinEstimator(float64(len(probe)))
	for _, v := range build {
		e.ObserveBuild(data.Int(v))
	}
	for _, v := range probe {
		e.ObserveProbe(data.Int(v))
	}
	e.MarkConverged()
	if got := e.Estimate(); got != float64(truth) {
		t.Errorf("converged estimate = %g, want %d", got, truth)
	}
	lo, hi := e.ConfidenceInterval(0.99)
	if lo != hi {
		t.Error("converged CI should be degenerate")
	}
}

func TestJoinEstimatorUnbiasedMidway(t *testing.T) {
	// Average over many random probe orders: the estimate at 10% of the
	// probe should be close to the truth.
	rng := rand.New(rand.NewSource(2))
	build := randCol(rng, 1000, 100)
	probe := randCol(rng, 2000, 100)
	counts := map[int64]int64{}
	for _, v := range build {
		counts[v]++
	}
	var truth int64
	for _, v := range probe {
		truth += counts[v]
	}
	sum := 0.0
	const reps = 30
	for r := 0; r < reps; r++ {
		e := NewJoinEstimator(float64(len(probe)))
		for _, v := range build {
			e.ObserveBuild(data.Int(v))
		}
		perm := rng.Perm(len(probe))
		for i := 0; i < 200; i++ {
			e.ObserveProbe(data.Int(probe[perm[i]]))
		}
		sum += e.Estimate()
	}
	avg := sum / reps
	if math.Abs(avg-float64(truth))/float64(truth) > 0.05 {
		t.Errorf("mean early estimate %g vs truth %d (bias > 5%%)", avg, truth)
	}
}

func TestJoinEstimatorConfidenceIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	build := randCol(rng, 1000, 50)
	probe := randCol(rng, 3000, 50)
	counts := map[int64]int64{}
	for _, v := range build {
		counts[v]++
	}
	var truth int64
	for _, v := range probe {
		truth += counts[v]
	}
	covered, reps := 0, 100
	for r := 0; r < reps; r++ {
		e := NewJoinEstimator(float64(len(probe)))
		for _, v := range build {
			e.ObserveBuild(data.Int(v))
		}
		perm := rng.Perm(len(probe))
		for i := 0; i < 300; i++ {
			e.ObserveProbe(data.Int(probe[perm[i]]))
		}
		lo, hi := e.ConfidenceInterval(0.95)
		if float64(truth) >= lo && float64(truth) <= hi {
			covered++
		}
	}
	// 95% nominal; accept ≥ 85% over 100 trials.
	if covered < 85 {
		t.Errorf("95%% CI covered truth in only %d/%d trials", covered, reps)
	}
}

func TestJoinEstimatorWorstCaseBoundLooser(t *testing.T) {
	e := NewJoinEstimator(1000)
	for i := int64(0); i < 500; i++ {
		e.ObserveBuild(data.Int(i % 20))
	}
	for i := int64(0); i < 100; i++ {
		e.ObserveProbe(data.Int(i % 20))
	}
	lo, hi := e.ConfidenceInterval(0.99)
	ciHalf := (hi - lo) / 2
	wc := e.WorstCaseBound(0.99)
	if wc <= ciHalf {
		t.Errorf("worst-case bound %g should be looser than CI half-width %g", wc, ciHalf)
	}
	e2 := NewJoinEstimator(10)
	if !math.IsInf(e2.WorstCaseBound(0.99), 1) {
		t.Error("bound before any probe should be infinite")
	}
}

func TestJoinEstimatorProbeSizeRevision(t *testing.T) {
	e := NewJoinEstimator(100)
	e.ObserveBuild(data.Int(1))
	e.ObserveProbe(data.Int(1))
	if e.Estimate() != 100 {
		t.Errorf("estimate = %g, want 100", e.Estimate())
	}
	e.SetProbeSize(200)
	if e.Estimate() != 200 {
		t.Errorf("after revision = %g, want 200", e.Estimate())
	}
	if e.ProbeSize() != 200 || e.ProbeTuplesSeen() != 1 {
		t.Error("accessors wrong")
	}
}

// ---- PipelineEstimator ----

// bruteChainSizes computes the true output sizes of each join level for a
// chain defined by build relations (top..bottom) with their (buildKeyCol,
// provenance column into the accumulated output) and the bottom stream.
// It returns sizes[k] for k = 0 (top) .. m-1 (bottom). Only used for
// small inputs.
func runChainAndCompare(t *testing.T, top *exec.HashJoin, att *Attachment) {
	t.Helper()
	// Collect chain joins top-down.
	var joins []*exec.HashJoin
	cur := top
	for {
		joins = append(joins, cur)
		next, ok := cur.Probe().(*exec.HashJoin)
		if !ok {
			break
		}
		cur = next
	}
	if _, err := exec.Run(top); err != nil {
		t.Fatal(err)
	}
	pe := att.ChainOf[top]
	if pe == nil {
		t.Fatal("no chain estimator attached")
	}
	if !pe.Converged() {
		t.Fatal("estimator did not converge")
	}
	for k, j := range joins {
		truth := float64(j.Stats().Emitted.Load())
		if got := pe.Estimate(k); math.Abs(got-truth) > 1e-6 {
			t.Errorf("level %d: converged estimate %g != true cardinality %g", k, got, truth)
		}
		if j.Stats().Source() != "once-exact" {
			t.Errorf("level %d: est source = %q", k, j.Stats().Source())
		}
		if math.Abs(j.Stats().Estimate()-truth) > 1e-6 {
			t.Errorf("level %d: stats estimate %g != %g", k, j.Stats().Estimate(), truth)
		}
	}
}

func TestPipelineBinaryJoinExact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := table("a", []string{"k"}, randCol(rng, 300, 20))
	b := table("b", []string{"k"}, randCol(rng, 400, 20))
	j := exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
	att := Attach(j)
	runChainAndCompare(t, j, att)
}

func TestPipelineSameAttributeChainExact(t *testing.T) {
	// A ⋈x (B ⋈x C), all joins on the same attribute (§4.1.4.1).
	rng := rand.New(rand.NewSource(11))
	a := table("a", []string{"x"}, randCol(rng, 100, 10))
	b := table("b", []string{"x"}, randCol(rng, 120, 10))
	c := table("c", []string{"x"}, randCol(rng, 150, 10))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	// Upper probes the lower output on c.x (same values as b.x).
	upper := exec.NewHashJoin(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve("c", "x"))
	att := Attach(upper)
	runChainAndCompare(t, upper, att)
}

func TestPipelineCase1DifferentAttributesExact(t *testing.T) {
	// A ⋈y (B ⋈x C) with A.y = C.y: upper key from the lower probe
	// relation (§4.1.4.2 Case 1).
	rng := rand.New(rand.NewSource(12))
	a := table("a", []string{"y"}, randCol(rng, 90, 8))
	b := table("b", []string{"x"}, randCol(rng, 110, 12))
	c := table("c", []string{"x", "y"}, randCol(rng, 130, 12), randCol(rng, 130, 8))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	upper := exec.NewHashJoin(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve("c", "y"))
	att := Attach(upper)
	runChainAndCompare(t, upper, att)
}

func TestPipelineCase2BuildInputKeyExact(t *testing.T) {
	// A ⋈y (B ⋈x C) with A.y = B.y: upper key from the lower BUILD
	// relation, requiring the derived histogram (§4.1.4.2 Case 2).
	rng := rand.New(rand.NewSource(13))
	a := table("a", []string{"y"}, randCol(rng, 90, 8))
	b := table("b", []string{"x", "y"}, randCol(rng, 110, 12), randCol(rng, 110, 8))
	c := table("c", []string{"x"}, randCol(rng, 130, 12))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	upper := exec.NewHashJoin(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve("b", "y"))
	att := Attach(upper)
	runChainAndCompare(t, upper, att)
}

func TestPipelineThreeJoinMixedProvenanceExact(t *testing.T) {
	// A ⋈w (B ⋈y (C ⋈x D)) where A keys off C's w column (Case 2 through
	// two levels) and B keys off D's y column (Case 1).
	rng := rand.New(rand.NewSource(14))
	a := table("a", []string{"w"}, randCol(rng, 60, 6))
	b := table("b", []string{"y"}, randCol(rng, 70, 7))
	c := table("c", []string{"x", "w"}, randCol(rng, 80, 9), randCol(rng, 80, 6))
	d := table("d", []string{"x", "y"}, randCol(rng, 90, 9), randCol(rng, 90, 7))
	bottom := exec.NewHashJoinOn(exec.NewScan(c, ""), exec.NewScan(d, ""), "c", "x", "d", "x")
	mid := exec.NewHashJoin(exec.NewScan(b, ""), bottom,
		0, bottom.Schema().MustResolve("d", "y"))
	top := exec.NewHashJoin(exec.NewScan(a, ""), mid,
		0, mid.Schema().MustResolve("c", "w"))
	att := Attach(top)
	runChainAndCompare(t, top, att)
}

func TestPipelineHistogramSharing(t *testing.T) {
	// Case 1: no folds — all levels share one histogram per relation.
	links := []ChainLink{
		{Join: dummyJoin(), BuildWidth: 1, BuildKeys: []int{0}, ProbeKeys: []int{1}, SetBuildHook: func(func(data.Tuple)) {}},
		{Join: dummyJoin(), BuildWidth: 1, BuildKeys: []int{0}, ProbeKeys: []int{0}, SetBuildHook: func(func(data.Tuple)) {}},
	}
	pe, err := NewPipelineEstimator(links, func() float64 { return 100 })
	if err != nil {
		t.Fatal(err)
	}
	if pe.Histogram(0, 1) != pe.Histogram(1, 1) {
		t.Error("Case 1 should share the lower relation's histogram across levels")
	}
	// Case 2: upper join keyed off lower build relation (probe key 0
	// within build width... construct: BuildWidth=2 for lower, upper
	// ProbeKey=1 → inside lower build relation → fold).
	links2 := []ChainLink{
		{Join: dummyJoin(), BuildWidth: 1, BuildKeys: []int{0}, ProbeKeys: []int{1}, SetBuildHook: func(func(data.Tuple)) {}},
		{Join: dummyJoin(), BuildWidth: 2, BuildKeys: []int{0}, ProbeKeys: []int{0}, SetBuildHook: func(func(data.Tuple)) {}},
	}
	pe2, err := NewPipelineEstimator(links2, func() float64 { return 100 })
	if err != nil {
		t.Fatal(err)
	}
	if pe2.Histogram(0, 1) == pe2.Histogram(1, 1) {
		t.Error("Case 2 must build a separate derived histogram")
	}
}

func dummyJoin() exec.Operator {
	tb := table("d", []string{"k"}, []int64{1})
	return exec.NewScan(tb, "")
}

func TestPipelineEstimatorValidation(t *testing.T) {
	if _, err := NewPipelineEstimator(nil, func() float64 { return 0 }); err == nil {
		t.Error("empty chain should fail")
	}
}

func TestPipelineRandomChainsProperty(t *testing.T) {
	// Randomized end-to-end invariant: for random 2-join chains with
	// random provenance (same-attr / Case 1 / Case 2), the converged
	// estimates equal the true cardinalities.
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dom := rng.Intn(15) + 2
		na, nb, nc := 40+rng.Intn(40), 40+rng.Intn(40), 40+rng.Intn(40)
		a := table("a", []string{"y"}, randCol(rng, na, dom))
		b := table("b", []string{"x", "y"}, randCol(rng, nb, dom), randCol(rng, nb, dom))
		c := table("c", []string{"x", "y"}, randCol(rng, nc, dom), randCol(rng, nc, dom))
		lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
		var probeKey int
		switch trial % 3 {
		case 0: // same attribute
			probeKey = lower.Schema().MustResolve("c", "x")
		case 1: // Case 1
			probeKey = lower.Schema().MustResolve("c", "y")
		default: // Case 2
			probeKey = lower.Schema().MustResolve("b", "y")
		}
		upper := exec.NewHashJoin(exec.NewScan(a, ""), lower, 0, probeKey)
		att := Attach(upper)
		runChainAndCompare(t, upper, att)
	}
}

// ---- dne / byte ----

func TestDNEAndByteLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := table("a", []string{"k"}, randCol(rng, 200, 10))
	b := table("b", []string{"k"}, randCol(rng, 300, 10))
	j := exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
	const opt = 12345.0
	if got := DNEEstimate(j, opt); got != opt {
		t.Errorf("dne before start = %g, want optimizer %g", got, opt)
	}
	if got := ByteEstimate(j, opt); got != opt {
		t.Errorf("byte before start = %g", got)
	}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	// Drain half the output.
	var n int64
	for {
		tu, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tu == nil {
			break
		}
		n++
		if n == 1000 {
			dne := DNEEstimate(j, opt)
			byte_ := ByteEstimate(j, opt)
			f := j.JoinedProbeFraction()
			if f <= 0 || f > 1 {
				t.Fatalf("driver fraction = %g", f)
			}
			wantDNE := float64(n) / f
			if math.Abs(dne-wantDNE) > 1e-9 {
				t.Errorf("dne = %g, want K/f = %g", dne, wantDNE)
			}
			wantByte := (1-f)*opt + float64(n)
			if math.Abs(byte_-wantByte) > 1e-9 {
				t.Errorf("byte = %g, want %g", byte_, wantByte)
			}
		}
	}
	j.Close()
	if got := DNEEstimate(j, opt); got != float64(n) {
		t.Errorf("dne after done = %g, want exact %d", got, n)
	}
	if got := ByteEstimate(j, opt); got != float64(n) {
		t.Errorf("byte after done = %g, want exact %d", got, n)
	}
}

func TestDriverFractionScan(t *testing.T) {
	a := table("a", []string{"k"}, []int64{1, 2, 3, 4})
	sc := exec.NewScan(a, "")
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	sc.Next()
	if got := DriverFraction(sc); got != 0.25 {
		t.Errorf("scan fraction = %g", got)
	}
	f := exec.NewFilter(sc, alwaysTrue{})
	if got := DriverFraction(f); got != 0.25 {
		t.Errorf("filter driver fraction = %g, want scan's 0.25", got)
	}
}

type alwaysTrue struct{}

func (alwaysTrue) Eval(data.Tuple) data.Value { return data.Bool(true) }
func (alwaysTrue) String() string             { return "true" }

// ---- Attach end-to-end ----

func TestAttachAggPushdownSameAttribute(t *testing.T) {
	// GROUP BY over a hash join on the join attribute: estimation pushes
	// into the join probe pass and the final estimate is the exact group
	// count.
	rng := rand.New(rand.NewSource(30))
	a := table("a", []string{"k"}, randCol(rng, 300, 25))
	b := table("b", []string{"k"}, randCol(rng, 500, 25))
	j := exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
	gcol := j.Schema().MustResolve("b", "k")
	agg := exec.NewHashAgg(j, []int{gcol}, []exec.AggSpec{{Func: exec.CountStar, Name: "c"}})
	att := Attach(agg)
	est := att.Aggs[agg]
	if est == nil {
		t.Fatal("no agg estimator attached")
	}
	if est.Source() != "agg-pushdown" {
		t.Fatalf("expected pushdown mode, got %q", est.Source())
	}
	rows, err := exec.Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	got := est.Estimate()
	if math.Abs(got-float64(rows)) > 1e-6 {
		t.Errorf("pushdown estimate %g != true group count %d", got, rows)
	}
}

func TestAttachAggStreamMode(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := table("a", []string{"k", "v"}, randCol(rng, 2000, 50), randCol(rng, 2000, 1000))
	sc := exec.NewScan(a, "")
	agg := exec.NewHashAgg(sc, []int{0}, []exec.AggSpec{{Func: exec.CountStar, Name: "c"}})
	att := Attach(agg)
	est := att.Aggs[agg]
	if est == nil || est.Source() == "agg-pushdown" {
		t.Fatal("expected stream-mode estimator")
	}
	rows, err := exec.Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Estimate(); got != float64(rows) {
		t.Errorf("stream estimate %g != %d groups", got, rows)
	}
	if agg.Stats().Estimate() != float64(rows) {
		t.Errorf("agg stats estimate %g", agg.Stats().Estimate())
	}
}

func TestAttachSortAggObservesUnsortedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := table("a", []string{"k"}, randCol(rng, 1500, 40))
	sc := exec.NewScan(a, "")
	agg := exec.NewSortAgg(sc, []int{0}, []exec.AggSpec{{Func: exec.CountStar, Name: "c"}})
	att := Attach(agg)
	est := att.Aggs[agg]
	if est == nil {
		t.Fatal("no estimator")
	}
	rows, err := exec.Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Estimate(); got != float64(rows) {
		t.Errorf("estimate %g != %d", got, rows)
	}
}

func TestAttachMergeJoinChain(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := table("a", []string{"k"}, randCol(rng, 200, 15))
	b := table("b", []string{"k"}, randCol(rng, 250, 15))
	mj, _, _ := exec.NewSortMergeJoin(exec.NewScan(a, ""), exec.NewScan(b, ""), 0, 0)
	att := Attach(mj)
	pe := att.ChainOf[mj]
	if pe == nil {
		t.Fatal("no estimator attached to sort-merge join")
	}
	n, err := exec.Run(mj)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Converged() {
		t.Fatal("SMJ estimator did not converge")
	}
	if got := pe.Estimate(0); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("SMJ estimate %g != true size %d", got, n)
	}
	// Crucially, the estimate converged during the SORT pass, before any
	// join output: the paper's §4.1.2 claim.
	if mj.Stats().Source() != "once-exact" {
		t.Errorf("source = %q", mj.Stats().Source())
	}
}

func TestAttachPreSortedMergeJoinFallsBack(t *testing.T) {
	a := table("a", []string{"k"}, []int64{1, 2, 3})
	b := table("b", []string{"k"}, []int64{1, 2, 3})
	mj := exec.NewMergeJoin(exec.NewScan(a, ""), exec.NewScan(b, ""), 0, 0)
	att := Attach(mj)
	if att.ChainOf[mj] != nil {
		t.Error("pre-sorted merge join should not get an estimator")
	}
	found := false
	for _, f := range att.Fallbacks {
		if f == exec.Operator(mj) {
			found = true
		}
	}
	if !found {
		t.Error("pre-sorted merge join should be recorded as dne fallback")
	}
}

func TestStreamSizeEstimateFilterRefines(t *testing.T) {
	a := table("a", []string{"k"}, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	sc := exec.NewScan(a, "")
	f := exec.NewFilter(sc, alwaysTrue{})
	f.Stats().SetEstimate(2, "optimizer") // bad optimizer guess
	if got := StreamSizeEstimate(f); got != 2 {
		t.Errorf("before start = %g, want optimizer 2", got)
	}
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f.Next()
	}
	// 4 emitted at scan fraction 4/8 → dne = 8.
	if got := StreamSizeEstimate(f); got != 8 {
		t.Errorf("midway = %g, want 8", got)
	}
}

func TestSpilledJoinEstimatesExact(t *testing.T) {
	// The once estimator attaches to the partition passes, which are
	// identical whether partitions stay in memory or spill: the converged
	// estimate must be exact either way.
	rng := rand.New(rand.NewSource(80))
	a := table("a", []string{"k"}, randCol(rng, 2000, 50))
	b := table("b", []string{"k"}, randCol(rng, 3000, 50))
	j := exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
	j.SetMemoryBudget(8 * 1024)
	att := Attach(j)
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if j.Spilled() == 0 {
		t.Fatal("expected the join to spill")
	}
	pe := att.ChainOf[j]
	if got := pe.Estimate(0); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("spilled-join estimate %g != %d", got, n)
	}
}

func TestExternalSortMergeJoinEstimatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := table("a", []string{"k"}, randCol(rng, 1500, 40))
	b := table("b", []string{"k"}, randCol(rng, 1800, 40))
	mj, ls, rs := exec.NewSortMergeJoin(exec.NewScan(a, ""), exec.NewScan(b, ""), 0, 0)
	ls.SetMemoryBudget(8 * 1024)
	rs.SetMemoryBudget(8 * 1024)
	att := Attach(mj)
	if err := mj.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(rows))
	// Inspect the sorts before Close releases the run files.
	if ls.Runs() == 0 || rs.Runs() == 0 {
		t.Fatal("expected external sorts")
	}
	mj.Close()
	pe := att.ChainOf[mj]
	if got := pe.Estimate(0); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("external SMJ estimate %g != %d", got, n)
	}
}

func TestSortMergeJoinChainSameAttribute(t *testing.T) {
	// §4.1.4.3: "a sequence of sort-merge joins on the same attribute can
	// be handled in exactly the same way as a pipeline of hash joins."
	// The inner merge join's output is already sorted on the shared key,
	// so the outer merge join consumes it directly — one pipeline.
	rng := rand.New(rand.NewSource(90))
	a := table("a", []string{"x"}, randCol(rng, 90, 9))
	b := table("b", []string{"x"}, randCol(rng, 100, 9))
	c := table("c", []string{"x"}, randCol(rng, 110, 9))
	lower, _, _ := exec.NewSortMergeJoin(exec.NewScan(b, ""), exec.NewScan(c, ""), 0, 0)
	sortA := exec.NewSort(exec.NewScan(a, ""), 0)
	// lower output schema: b.x at 0, c.x at 1; both carry the join value.
	upper := exec.NewMergeJoin(sortA, lower, 0, 1)
	att := Attach(upper)
	pe := att.ChainOf[upper]
	if pe == nil || pe.Levels() != 2 {
		t.Fatalf("expected a 2-level merge chain, got %v", pe)
	}
	// Correctness against the equivalent hash pipeline.
	n, err := exec.Run(upper)
	if err != nil {
		t.Fatal(err)
	}
	hLower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	hUpper := exec.NewHashJoin(exec.NewScan(a, ""), hLower, 0, hLower.Schema().MustResolve("c", "x"))
	hn, err := exec.Run(hUpper)
	if err != nil {
		t.Fatal(err)
	}
	if n != hn {
		t.Fatalf("merge chain %d rows vs hash chain %d", n, hn)
	}
	if !pe.Converged() {
		t.Fatal("merge chain estimator did not converge")
	}
	if got := pe.Estimate(0); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("upper estimate %g != %d", got, n)
	}
	if got := pe.Estimate(1); math.Abs(got-float64(lower.Stats().Emitted.Load())) > 1e-6 {
		t.Errorf("lower estimate %g != %d", got, lower.Stats().Emitted.Load())
	}
}
