package core

import (
	"math"

	"qpi/internal/data"
)

// Histogram is the frequency-count contract the estimators need. The
// exact FreqHistogram is the paper's default; BucketHistogram is the
// approximate variant §6 proposes as future work ("deploy approximations
// of the histograms we construct ... the classic accuracy performance
// trade-off can be explored via approximation").
type Histogram interface {
	// Add counts one observation of v (NULLs ignored).
	Add(v data.Value)
	// AddN counts w observations of v.
	AddN(v data.Value, w int64)
	// Count returns the (possibly approximate) frequency of v.
	Count(v data.Value) int64
	// Total returns the sum of all counts.
	Total() int64
	// MemoryUsed returns the live payload bytes (Table 2 accounting).
	MemoryUsed() int64
}

var (
	_ Histogram = (*FreqHistogram)(nil)
	_ Histogram = (*BucketHistogram)(nil)
)

// BucketHistogram approximates a frequency histogram with a fixed number
// of hash buckets: values colliding into a bucket share one counter, so
// Count can only overestimate (never underestimate) the true frequency.
// Memory is O(buckets) regardless of the number of distinct values —
// trading the once estimator's exactness-at-convergence for a bounded
// footprint.
type BucketHistogram struct {
	buckets []int64
	total   int64
}

// NewBucketHistogram creates an approximate histogram with n buckets
// (minimum 1).
func NewBucketHistogram(n int) *BucketHistogram {
	if n < 1 {
		n = 1
	}
	return &BucketHistogram{buckets: make([]int64, n)}
}

// Add implements Histogram.
func (h *BucketHistogram) Add(v data.Value) { h.AddN(v, 1) }

// AddN implements Histogram.
func (h *BucketHistogram) AddN(v data.Value, w int64) {
	if v.IsNull() || w == 0 {
		return
	}
	h.buckets[h.slot(v)] += w
	h.total += w
}

// Count implements Histogram. The result upper-bounds the true frequency.
func (h *BucketHistogram) Count(v data.Value) int64 {
	if v.IsNull() {
		return 0
	}
	return h.buckets[h.slot(v)]
}

// Total implements Histogram.
func (h *BucketHistogram) Total() int64 { return h.total }

// Buckets returns the bucket count.
func (h *BucketHistogram) Buckets() int { return len(h.buckets) }

// MemoryUsed implements Histogram: 8 bytes per bucket.
func (h *BucketHistogram) MemoryUsed() int64 { return int64(len(h.buckets)) * 8 }

func (h *BucketHistogram) slot(v data.Value) int {
	return int(hashHistValue(v) % uint64(len(h.buckets)))
}

// hashHistValue hashes a value for bucket placement (independent of the
// join partitioning hash so bucket collisions do not correlate with
// partitions).
func hashHistValue(v data.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.Kind {
	case data.KindInt:
		mix(1)
		x := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(x >> (8 * i)))
		}
	case data.KindFloat:
		mix(2)
		x := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			mix(byte(x >> (8 * i)))
		}
	case data.KindString:
		mix(3)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}

// HistogramFactory creates the histograms the pipeline estimators use.
type HistogramFactory func() Histogram

// ExactHistograms is the default factory (the paper's exact counts).
func ExactHistograms() Histogram { return NewFreqHistogram() }

// ApproximateHistograms returns a factory of n-bucket approximate
// histograms.
func ApproximateHistograms(n int) HistogramFactory {
	return func() Histogram { return NewBucketHistogram(n) }
}
