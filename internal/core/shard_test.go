package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"qpi/internal/exec"
)

// Tests for the sharded (batched) estimator attachment: every chain shape
// the paper's §4.1.4 evaluation exercises (Figure 3's binary joins, Figure
// 5's same-attribute chains, Figure 6's Case 1/Case 2 different-attribute
// chains) must converge to the same exact cardinalities whether the joins
// run tuple-at-a-time, batched serial (1 worker), or batched parallel.

// raiseProcs lifts GOMAXPROCS so HashJoin.Workers() does not collapse the
// parallel scatter to one worker on single-CPU machines.
func raiseProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// chainJoins collects a probe-linked hash-join chain top-down.
func chainJoins(top *exec.HashJoin) []*exec.HashJoin {
	var joins []*exec.HashJoin
	cur := top
	for {
		joins = append(joins, cur)
		next, ok := cur.Probe().(*exec.HashJoin)
		if !ok {
			break
		}
		cur = next
	}
	return joins
}

// runBatchedChainAndCompare attaches the estimator to an already
// parallelized chain, runs it through the batch path, and checks the
// converged estimates are exact at every level — the same contract
// runChainAndCompare enforces for the serial mode.
func runBatchedChainAndCompare(t *testing.T, top *exec.HashJoin, wantSharded bool) {
	t.Helper()
	att := Attach(top)
	pe := att.ChainOf[top]
	if pe == nil {
		t.Fatal("no chain estimator attached")
	}
	if pe.BatchAttached() != wantSharded {
		t.Fatalf("BatchAttached = %v, want %v", pe.BatchAttached(), wantSharded)
	}
	if _, err := exec.RunBatch(exec.AsBatch(top)); err != nil {
		t.Fatal(err)
	}
	if !pe.Converged() {
		t.Fatal("estimator did not converge")
	}
	for k, j := range chainJoins(top) {
		truth := float64(j.Stats().Emitted.Load())
		if got := pe.Estimate(k); math.Abs(got-truth) > 1e-6 {
			t.Errorf("level %d: converged estimate %g != true cardinality %g", k, got, truth)
		}
		if j.Stats().Source() != "once-exact" {
			t.Errorf("level %d: est source = %q", k, j.Stats().Source())
		}
		if math.Abs(j.Stats().Estimate()-truth) > 1e-6 {
			t.Errorf("level %d: stats estimate %g != %g", k, j.Stats().Estimate(), truth)
		}
	}
}

// parallelize marks every hash join in the plan batched with k workers.
// It must run before Attach so the estimator sees the batched chain.
func parallelize(op exec.Operator, k int) {
	if j, ok := op.(*exec.HashJoin); ok {
		j.SetParallelism(k)
	}
	for _, c := range op.Children() {
		parallelize(c, k)
	}
}

// fig3Plan is the Figure 3 shape: one binary join on a shared domain.
func fig3Plan(seed int64) *exec.HashJoin {
	rng := rand.New(rand.NewSource(seed))
	a := table("a", []string{"k"}, randCol(rng, 300, 20))
	b := table("b", []string{"k"}, randCol(rng, 400, 20))
	return exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
}

// fig5Plan is the Figure 5 shape: A ⋈x (B ⋈x C), same attribute at both
// levels.
func fig5Plan(seed int64) *exec.HashJoin {
	rng := rand.New(rand.NewSource(seed))
	a := table("a", []string{"x"}, randCol(rng, 100, 10))
	b := table("b", []string{"x"}, randCol(rng, 120, 10))
	c := table("c", []string{"x"}, randCol(rng, 150, 10))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	return exec.NewHashJoin(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve("c", "x"))
}

// fig6Plan builds the Figure 6 shapes: A ⋈y (B ⋈x C) with the upper key
// from the lower probe relation (Case 1) or the lower build relation
// (Case 2, the derived-histogram path).
func fig6Plan(seed int64, case2 bool) *exec.HashJoin {
	rng := rand.New(rand.NewSource(seed))
	a := table("a", []string{"y"}, randCol(rng, 90, 8))
	var upperKeyTable string
	var lower *exec.HashJoin
	if case2 {
		b := table("b", []string{"x", "y"}, randCol(rng, 110, 12), randCol(rng, 110, 8))
		c := table("c", []string{"x"}, randCol(rng, 130, 12))
		lower = exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
		upperKeyTable = "b"
	} else {
		b := table("b", []string{"x"}, randCol(rng, 110, 12))
		c := table("c", []string{"x", "y"}, randCol(rng, 130, 12), randCol(rng, 130, 8))
		lower = exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
		upperKeyTable = "c"
	}
	return exec.NewHashJoin(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve(upperKeyTable, "y"))
}

func TestBatchedChainsExactOnPaperShapes(t *testing.T) {
	raiseProcs(t, 4)
	shapes := []struct {
		name string
		mk   func() *exec.HashJoin
	}{
		{"fig3-binary", func() *exec.HashJoin { return fig3Plan(10) }},
		{"fig5-same-attr", func() *exec.HashJoin { return fig5Plan(11) }},
		{"fig6-case1", func() *exec.HashJoin { return fig6Plan(12, false) }},
		{"fig6-case2", func() *exec.HashJoin { return fig6Plan(13, true) }},
	}
	for _, sh := range shapes {
		for _, workers := range []int{1, 4} {
			t.Run(sh.name, func(t *testing.T) {
				top := sh.mk()
				parallelize(top, workers)
				runBatchedChainAndCompare(t, top, true)
			})
		}
	}
}

// TestBatchedMatchesSerialTrajectories runs each shape serially and
// batched and demands the same converged estimate and the same number of
// probe tuples observed — the trajectories end at the same point.
func TestBatchedMatchesSerialTrajectories(t *testing.T) {
	raiseProcs(t, 4)
	shapes := []func() *exec.HashJoin{
		func() *exec.HashJoin { return fig3Plan(20) },
		func() *exec.HashJoin { return fig5Plan(21) },
		func() *exec.HashJoin { return fig6Plan(22, false) },
		func() *exec.HashJoin { return fig6Plan(23, true) },
	}
	for si, mk := range shapes {
		run := func(workers int) (est []float64, probes int64, rows int64) {
			top := mk()
			if workers > 0 {
				parallelize(top, workers)
			}
			att := Attach(top)
			pe := att.ChainOf[top]
			pe.OnProbeObserved = func(n int64) { probes = n }
			var err error
			if workers > 0 {
				rows, err = exec.RunBatch(exec.AsBatch(top))
			} else {
				rows, err = exec.Run(top)
			}
			if err != nil {
				t.Fatal(err)
			}
			for k := range chainJoins(top) {
				est = append(est, pe.Estimate(k))
			}
			return est, probes, rows
		}
		serialEst, serialProbes, serialRows := run(0)
		for _, workers := range []int{1, 4} {
			est, probes, rows := run(workers)
			if rows != serialRows {
				t.Errorf("shape %d workers %d: %d rows vs serial %d", si, workers, rows, serialRows)
			}
			if probes != serialProbes {
				t.Errorf("shape %d workers %d: observed %d probe tuples vs serial %d", si, workers, probes, serialProbes)
			}
			for k := range est {
				diff := math.Abs(est[k] - serialEst[k])
				if rel := math.Abs(serialEst[k]); rel > 0 {
					diff /= rel
				}
				if diff > 1e-9 {
					t.Errorf("shape %d workers %d level %d: estimate %g vs serial %g",
						si, workers, k, est[k], serialEst[k])
				}
			}
		}
	}
}

// TestMixedChainFallsBackToTupleHooks: if only part of a chain is batched
// the estimator must keep the (reader-goroutine) per-tuple hooks and stay
// exact — the sharded mode requires every link batched.
func TestMixedChainFallsBackToTupleHooks(t *testing.T) {
	raiseProcs(t, 4)
	top := fig5Plan(30)
	// Batch only the lower join.
	lower := top.Probe().(*exec.HashJoin)
	lower.SetParallelism(4)
	runBatchedChainAndCompare(t, top, false)
}

// TestBatchedSemiJoinTopExact: non-inner top joins root their own chains;
// the sharded mode must honor their multiplicity transforms too.
func TestBatchedSemiJoinTopExact(t *testing.T) {
	raiseProcs(t, 4)
	rng := rand.New(rand.NewSource(31))
	a := table("a", []string{"k"}, randCol(rng, 200, 15))
	b := table("b", []string{"k"}, randCol(rng, 260, 15))
	j := exec.NewHashJoinMulti(exec.NewScan(a, ""), exec.NewScan(b, ""),
		[]int{0}, []int{0}, exec.SemiJoin)
	j.SetParallelism(4)
	runBatchedChainAndCompare(t, j, true)
}

// TestBatchedAggPushdownExact: GROUP BY over a batched join chain keeps
// the push-down estimator exact; the final publish happens at the probe
// barrier (afterConverge) instead of the per-tuple tick.
func TestBatchedAggPushdownExact(t *testing.T) {
	raiseProcs(t, 4)
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(32))
		a := table("a", []string{"k"}, randCol(rng, 300, 25))
		b := table("b", []string{"k"}, randCol(rng, 500, 25))
		j := exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
		j.SetParallelism(workers)
		gcol := j.Schema().MustResolve("b", "k")
		agg := exec.NewHashAgg(j, []int{gcol}, []exec.AggSpec{{Func: exec.CountStar, Name: "c"}})
		att := Attach(agg)
		est := att.Aggs[agg]
		if est == nil || est.Source() != "agg-pushdown" {
			t.Fatal("expected pushdown estimator")
		}
		if !att.ChainOf[j].BatchAttached() {
			t.Fatal("chain should attach sharded")
		}
		rows, err := exec.RunBatch(exec.AsBatch(agg))
		if err != nil {
			t.Fatal(err)
		}
		if got := est.Estimate(); math.Abs(got-float64(rows)) > 1e-6 {
			t.Errorf("workers %d: pushdown estimate %g != true group count %d", workers, got, rows)
		}
		if got := agg.Stats().Estimate(); math.Abs(got-float64(rows)) > 1e-6 {
			t.Errorf("workers %d: published agg estimate %g != %d", workers, got, rows)
		}
	}
}
