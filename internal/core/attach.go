package core

import (
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/obs"
)

// Attachment is the result of wiring the online estimation framework into
// a physical plan: the chain estimators (one per hash-join or sort-merge
// pipeline chain, including "chains" of a single binary join), the
// aggregation estimators, and the join→(chain, level) index.
type Attachment struct {
	Chains    []*PipelineEstimator
	ChainOf   map[exec.Operator]*PipelineEstimator
	LevelOf   map[exec.Operator]int
	Aggs      map[exec.Operator]*AggEstimator
	Fallbacks []exec.Operator // operators left to the dne estimator
	Ineq      []*InequalityEstimator
	Disjunct  []*DisjunctiveEstimator
	opts      AttachOptions
	tr        *obs.Tracer
}

// Attach walks a plan and installs the paper's estimators (§5
// "Implementation"):
//
//   - every maximal chain of hash joins linked probe-to-output gets a
//     PipelineEstimator (Algorithm 1), with estimation pushed down to the
//     lowest join's probe partitioning pass;
//   - every sort-merge join whose inputs are Sort operators gets the same
//     treatment, with histograms built during the sort passes (§4.1.2);
//     chains of merge joins on the same attribute (no intermediate sort)
//     are chained like hash joins (§4.1.4.3);
//   - aggregations get GEE/MLE chooser estimation over their input pass,
//     or push-down estimation over the join output distribution when they
//     sit on a join chain and group by a bottom-stream attribute (§4.2);
//   - nested-loops joins, selections and pre-sorted merge joins fall back
//     to the dne estimator (§4.1.3, §4.3), recorded in Fallbacks.
//
// Attach must be called before the plan is opened.
func Attach(root exec.Operator) *Attachment {
	return AttachWith(root, AttachOptions{})
}

// AttachOptions customizes Attach.
type AttachOptions struct {
	// Histograms selects the histogram implementation; nil means the
	// paper's exact frequency histograms. Use ApproximateHistograms(n)
	// for the bounded-memory variant of §6 (estimates then upper-bound
	// the true sizes instead of converging exactly).
	Histograms HistogramFactory
}

// AttachWith is Attach with options.
func AttachWith(root exec.Operator, opts AttachOptions) *Attachment {
	if opts.Histograms == nil {
		opts.Histograms = ExactHistograms
	}
	a := &Attachment{
		ChainOf: map[exec.Operator]*PipelineEstimator{},
		LevelOf: map[exec.Operator]int{},
		Aggs:    map[exec.Operator]*AggEstimator{},
		opts:    opts,
	}
	a.visit(root)
	return a
}

func (a *Attachment) visit(op exec.Operator) {
	switch o := op.(type) {
	case *exec.HashJoin:
		if a.ChainOf[o] == nil {
			a.attachHashChain(o)
		}
	case *exec.MergeJoin:
		if a.ChainOf[o] == nil {
			a.attachMergeChain(o)
		}
	case *exec.HashAgg:
		a.attachAgg(o, o.Child(), o.GroupBy(), func(f func(data.Tuple)) {
			prev := o.OnInput
			o.OnInput = compose(prev, f)
		}, func(f func()) {
			prev := o.OnInputEnd
			o.OnInputEnd = compose0(prev, f)
		}, func(f func(int64)) {
			prev := o.OnInputGroupCount
			o.OnInputGroupCount = compose1(prev, f)
		}, func(f func([]int64)) {
			prev := o.OnInputGroupCounts
			o.OnInputGroupCounts = composeSpan(prev, f)
		})
	case *exec.SortAgg:
		// Observe the *sorter's input* (randomly ordered), not the sorted
		// output.
		s := o.Sorter()
		a.attachAgg(o, s.Children()[0], o.GroupBy(), func(f func(data.Tuple)) {
			prev := s.OnInput
			s.OnInput = compose(prev, f)
		}, func(f func()) {
			prev := s.OnInputEnd
			s.OnInputEnd = compose0(prev, f)
		}, nil, nil)
	case *exec.NestedLoopsJoin:
		if !a.attachSortedOuterNL(o) && !a.attachSortedOuterThetaNL(o) &&
			!a.attachSortedOuterDisjunctNL(o) {
			a.Fallbacks = append(a.Fallbacks, o)
		}
	case *exec.Filter:
		a.Fallbacks = append(a.Fallbacks, o)
	}
	for _, c := range op.Children() {
		a.visit(c)
	}
}

// attachHashChain builds the estimator for the maximal hash-join chain
// whose top join is top. A chain may have any join type at the top but
// only inner joins below it: the outer/semi/anti variants do not compose
// as per-level products when other joins sit above them, so a non-inner
// probe child terminates the chain and roots its own.
func (a *Attachment) attachHashChain(top *exec.HashJoin) {
	var joins []*exec.HashJoin
	cur := top
	for {
		joins = append(joins, cur)
		next, ok := cur.Probe().(*exec.HashJoin)
		if !ok || next.Type() != exec.InnerJoin {
			break
		}
		cur = next
	}
	bottom := joins[len(joins)-1]
	bottomStream := bottom.Probe()

	links := make([]ChainLink, len(joins))
	for i, j := range joins {
		buildWidth := j.Build().Schema().Len()
		if j.Type() == exec.SemiJoin || j.Type() == exec.AntiJoin {
			buildWidth = 0 // semi/anti output is the probe schema alone
		}
		links[i] = ChainLink{
			Join:       j,
			BuildWidth: buildWidth,
			BuildKeys:  j.BuildKeys(),
			ProbeKeys:  j.ProbeKeys(),
			Mult:       multFor(j.Type()),
		}
		hashLinkHooks(&links[i], j)
	}
	pe, err := NewPipelineEstimatorHist(links, func() float64 {
		return StreamSizeEstimate(bottomStream)
	}, a.opts.Histograms)
	if err != nil {
		// Mixed-provenance multi-column keys: the per-level product
		// decomposition does not apply. Attach each join as its own
		// single-link chain instead (a length-1 chain always resolves:
		// its probe key trivially comes from its own probe stream).
		for _, j := range joins {
			a.attachSingleHashJoin(j)
		}
		return
	}
	wireHashProbe(pe, bottom)
	a.record(pe, joinsToOps(joins))
}

// hashLinkHooks fills a ChainLink's hook setters for one hash join,
// including the batched setters when the join runs batched partition
// passes (the estimator shards only if every link of the chain does).
func hashLinkHooks(l *ChainLink, j *exec.HashJoin) {
	l.SetBuildHook = func(f func(data.Tuple)) {
		j.OnBuildTuple = compose(j.OnBuildTuple, f)
	}
	if j.Columnar() {
		l.Columnar = true
		l.SetBuildColHook = func(f func(cb *data.ColBatch)) {
			j.OnBuildCol = composeCol(j.OnBuildCol, f)
		}
		if j.Morseled() {
			// Morsel-driven columnar passes deliver ColBatches from
			// concurrent scan workers: offer the worker-indexed setters so
			// the estimator can shard (it does only if the whole chain is
			// morselized; a serial fallback pass fires them as worker 0).
			l.Workers = j.Workers()
			l.SetBuildColBatchHook = func(f func(worker int, cb *data.ColBatch)) {
				j.OnBuildColBatch = composeColW(j.OnBuildColBatch, f)
			}
			l.SetBuildEndHook = func(f func()) {
				j.OnBuildEnd = compose0(j.OnBuildEnd, f)
			}
		}
		return
	}
	if !j.Batched() {
		return
	}
	l.Workers = j.Workers()
	l.SetBuildBatchHook = func(f func(worker int, b data.Batch)) {
		j.OnBuildBatch = composeBatch(j.OnBuildBatch, f)
	}
	l.SetBuildEndHook = func(f func()) {
		j.OnBuildEnd = compose0(j.OnBuildEnd, f)
	}
}

// wireHashProbe feeds the bottom probe stream to the estimator: sharded
// batch observation when the whole chain is batched, per-tuple hooks
// otherwise (per-tuple hooks fire on the reader goroutine even under a
// batched pass, so a mixed chain stays correct, just unsharded).
func wireHashProbe(pe *PipelineEstimator, bottom *exec.HashJoin) {
	if bottom.Columnar() && pe.ColShardAttached() {
		bottom.OnProbeColBatch = composeColW(bottom.OnProbeColBatch, pe.ObserveProbeColShard)
		bottom.OnProbeEnd = compose0(bottom.OnProbeEnd, pe.FinishProbe)
		return
	}
	if bottom.Columnar() && pe.ColAttached() {
		bottom.OnProbeCol = composeCol(bottom.OnProbeCol, pe.ObserveProbeCol)
		bottom.OnProbeEnd = compose0(bottom.OnProbeEnd, pe.MarkConverged)
		return
	}
	if pe.BatchAttached() {
		bottom.OnProbeBatch = composeBatch(bottom.OnProbeBatch, pe.ObserveProbeBatch)
		bottom.OnProbeEnd = compose0(bottom.OnProbeEnd, pe.FinishProbe)
		return
	}
	bottom.OnProbeTuple = compose(bottom.OnProbeTuple, pe.ObserveProbe)
	bottom.OnProbeEnd = compose0(bottom.OnProbeEnd, pe.MarkConverged)
}

// attachSingleHashJoin wires a length-1 chain estimator for one join.
func (a *Attachment) attachSingleHashJoin(j *exec.HashJoin) {
	buildWidth := j.Build().Schema().Len()
	if j.Type() == exec.SemiJoin || j.Type() == exec.AntiJoin {
		buildWidth = 0
	}
	links := []ChainLink{{
		Join:       j,
		BuildWidth: buildWidth,
		BuildKeys:  j.BuildKeys(),
		ProbeKeys:  j.ProbeKeys(),
		Mult:       multFor(j.Type()),
	}}
	hashLinkHooks(&links[0], j)
	probeStream := j.Probe()
	pe, err := NewPipelineEstimatorHist(links, func() float64 {
		return StreamSizeEstimate(probeStream)
	}, a.opts.Histograms)
	if err != nil {
		return
	}
	wireHashProbe(pe, j)
	a.record(pe, []exec.Operator{j})
}

// attachMergeChain builds the estimator for a chain of merge joins whose
// left (build) inputs are Sort operators. The bottom probe input must be
// a Sort as well; otherwise the inputs are pre-sorted and the paper
// prescribes the dne fallback.
func (a *Attachment) attachMergeChain(top *exec.MergeJoin) {
	var joins []*exec.MergeJoin
	cur := top
	for {
		joins = append(joins, cur)
		next, ok := cur.Right().(*exec.MergeJoin)
		if !ok {
			break
		}
		cur = next
	}
	bottom := joins[len(joins)-1]
	bottomSort, ok := bottom.Right().(*exec.Sort)
	if !ok {
		a.Fallbacks = append(a.Fallbacks, top)
		return
	}
	links := make([]ChainLink, len(joins))
	for i, j := range joins {
		ls, ok := j.Left().(*exec.Sort)
		if !ok {
			// Pre-sorted build input: no preprocessing pass to observe.
			a.Fallbacks = append(a.Fallbacks, j)
			return
		}
		links[i] = ChainLink{
			Join:       j,
			BuildWidth: j.Left().Schema().Len(),
			BuildKeys:  []int{j.LeftKey()},
			ProbeKeys:  []int{j.RightKey()},
			SetBuildHook: func(f func(data.Tuple)) {
				ls.OnInput = compose(ls.OnInput, f)
			},
		}
	}
	bottomStream := bottomSort.Children()[0]
	pe, err := NewPipelineEstimatorHist(links, func() float64 {
		return StreamSizeEstimate(bottomStream)
	}, a.opts.Histograms)
	if err != nil {
		return
	}
	bottomSort.OnInput = compose(bottomSort.OnInput, pe.ObserveProbe)
	bottomSort.OnInputEnd = compose0(bottomSort.OnInputEnd, pe.MarkConverged)
	ops := make([]exec.Operator, len(joins))
	for i, j := range joins {
		ops[i] = j
	}
	a.record(pe, ops)
}

// ReattachChain rewires estimation after the mid-query re-optimizer
// restructures a probe subtree: the old chain estimator is discarded
// wholesale (restructuring only happens before the segment has observed
// anything, so no state is lost) and fresh chains are attached rooted
// at each of the given top joins. Tops that already carry a chain are
// left alone; newly built chains inherit the attachment's tracer.
func (a *Attachment) ReattachChain(old *PipelineEstimator, tops ...*exec.HashJoin) {
	if old != nil {
		for i, pe := range a.Chains {
			if pe == old {
				a.Chains = append(a.Chains[:i], a.Chains[i+1:]...)
				break
			}
		}
		for op, pe := range a.ChainOf {
			if pe == old {
				delete(a.ChainOf, op)
				delete(a.LevelOf, op)
			}
		}
	}
	before := len(a.Chains)
	for _, top := range tops {
		if top != nil && a.ChainOf[top] == nil {
			a.attachHashChain(top)
		}
	}
	if a.tr != nil {
		for _, pe := range a.Chains[before:] {
			pe.SetTracer(a.tr)
		}
	}
}

func (a *Attachment) record(pe *PipelineEstimator, joins []exec.Operator) {
	a.Chains = append(a.Chains, pe)
	for level, j := range joins {
		a.ChainOf[j] = pe
		a.LevelOf[j] = level
	}
}

// attachSortedOuterNL handles the nested-loops case the paper's §4.1.3
// calls out: plain NL joins reduce to the dne estimator, but when the
// engine pre-sorts the outer input (for memory locality) and builds a
// temporary index on the inner, both inputs have preprocessing passes —
// the inner materialization builds the frequency histogram and the outer
// sort's input pass probes it, converging before the join emits.
func (a *Attachment) attachSortedOuterNL(j *exec.NestedLoopsJoin) bool {
	if !j.Indexed {
		return false
	}
	outerSort, ok := j.Outer().(*exec.Sort)
	if !ok {
		return false
	}
	links := []ChainLink{{
		Join:       j,
		BuildWidth: j.Inner().Schema().Len(),
		BuildKeys:  []int{j.InnerKey()},
		ProbeKeys:  []int{j.OuterKey()},
		SetBuildHook: func(f func(data.Tuple)) {
			j.OnInnerTuple = compose(j.OnInnerTuple, f)
		},
	}}
	bottomStream := outerSort.Children()[0]
	pe, err := NewPipelineEstimatorHist(links, func() float64 {
		return StreamSizeEstimate(bottomStream)
	}, a.opts.Histograms)
	if err != nil {
		return false
	}
	outerSort.OnInput = compose(outerSort.OnInput, pe.ObserveProbe)
	outerSort.OnInputEnd = compose0(outerSort.OnInputEnd, pe.MarkConverged)
	a.record(pe, []exec.Operator{j})
	return true
}

// multFor maps a join type to its estimator multiplicity transform.
func multFor(t exec.JoinType) func(int64) float64 {
	switch t {
	case exec.SemiJoin:
		return MultSemi
	case exec.AntiJoin:
		return MultAnti
	case exec.ProbeOuterJoin:
		return MultProbeOuter
	default:
		return nil
	}
}

func joinsToOps(joins []*exec.HashJoin) []exec.Operator {
	ops := make([]exec.Operator, len(joins))
	for i, j := range joins {
		ops[i] = j
	}
	return ops
}

// attachAgg wires distinct-value estimation for one aggregation whose
// input operator is input. setHook/setEndHook install observers on the
// aggregation's blocking input pass; setCountHook, when non-nil, installs
// a group-count-transition observer that shares the aggregation's own
// hash table (HashAgg); setCountsHook additionally installs the
// span-at-a-time form of the same observer, which a columnar input pass
// fires once per batch in place of the per-transition hook.
func (a *Attachment) attachAgg(agg exec.Operator, input exec.Operator, groupBy []int,
	setHook func(func(data.Tuple)), setEndHook func(func()),
	setCountHook func(func(int64)), setCountsHook func(func([]int64))) {

	// Push-down opportunity: single grouping column over a join chain,
	// grouping by an attribute that originates from the chain's bottom
	// stream (the same-attribute case of §4.2 and its chain
	// generalization). The chain estimator must already exist — visit
	// order is parent-first, so attach the join chain now if needed.
	if len(groupBy) == 1 {
		if j, ok := input.(*exec.HashJoin); ok {
			if a.ChainOf[j] == nil {
				a.attachHashChain(j)
			}
			pe := a.ChainOf[j]
			if pe != nil && a.LevelOf[j] == 0 {
				if col, ok := pe.ResolveToBottom(groupBy[0]); ok {
					hist := pe.EnableOutputDistribution(col)
					est := newPushdownAggEstimator(agg, hist, func() float64 {
						return pe.Estimate(0)
					})
					pe.OnProbeObserved = compose1(pe.OnProbeObserved, func(int64) {
						est.pushdownTick()
					})
					if pe.BatchAttached() || pe.ColShardAttached() {
						// Sharded probe observation publishes only at the
						// pass barrier; publish the final aggregation
						// estimate there too.
						pe.afterConverge = append(pe.afterConverge, est.MarkInputEnd)
					}
					a.Aggs[agg] = est
					return
				}
			}
		}
	}

	// Tracker mode: ride the hash aggregation's own group table.
	if setCountHook != nil {
		est := newTrackerAggEstimator(agg, func() float64 {
			return StreamSizeEstimate(input)
		})
		setCountHook(est.ObserveGroupCount)
		if setCountsHook != nil {
			setCountsHook(est.ObserveGroupCounts)
		}
		setEndHook(est.MarkInputEnd)
		a.Aggs[agg] = est
		return
	}

	// Stream mode: hash the group keys ourselves (sort aggregation).
	est := newStreamAggEstimator(agg, func() float64 {
		return StreamSizeEstimate(input)
	})
	gb := groupBy
	setHook(func(t data.Tuple) {
		est.ObserveInput(exec.GroupKey(t, gb))
	})
	setEndHook(est.MarkInputEnd)
	a.Aggs[agg] = est
}

// StreamSizeEstimate returns the best current belief about the total
// number of tuples an operator will emit: exact for scans, the operator's
// refined estimate when one exists, and the dne extrapolation for
// streaming operators like selections (§4.3).
func StreamSizeEstimate(op exec.Operator) float64 {
	switch o := op.(type) {
	case *exec.Scan:
		return float64(o.Stats().InputTotal)
	case *exec.Filter:
		return DNEEstimate(o, o.Stats().Estimate())
	case *exec.Project, *exec.Limit, *exec.Reorder:
		if op.Stats().IsDone() {
			return float64(op.Stats().Emitted.Load())
		}
		return StreamSizeEstimate(op.Children()[0])
	default:
		return op.Stats().Total()
	}
}

// compose chains two tuple hooks (either may be nil).
func compose(prev, next func(data.Tuple)) func(data.Tuple) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(t data.Tuple) {
		prev(t)
		next(t)
	}
}

// compose0 chains two niladic hooks.
func compose0(prev, next func()) func() {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func() {
		prev()
		next()
	}
}

// composeBatch chains two worker-batch hooks.
func composeBatch(prev, next func(int, data.Batch)) func(int, data.Batch) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(w int, b data.Batch) {
		prev(w, b)
		next(w, b)
	}
}

// composeCol chains two ColBatch hooks.
func composeCol(prev, next func(*data.ColBatch)) func(*data.ColBatch) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(cb *data.ColBatch) {
		prev(cb)
		next(cb)
	}
}

// composeColW chains two worker-indexed ColBatch hooks.
func composeColW(prev, next func(int, *data.ColBatch)) func(int, *data.ColBatch) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(w int, cb *data.ColBatch) {
		prev(w, cb)
		next(w, cb)
	}
}

// composeSpan chains two int64-span hooks.
func composeSpan(prev, next func([]int64)) func([]int64) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(ns []int64) {
		prev(ns)
		next(ns)
	}
}

// compose1 chains two int64 hooks.
func compose1(prev, next func(int64)) func(int64) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(v int64) {
		prev(v)
		next(v)
	}
}

// SetTracer routes every attached estimator's refinement events into tr
// (nil disables). Call it after Attach and before execution starts; it
// caches operator labels so publish boundaries stay allocation-free.
func (a *Attachment) SetTracer(tr *obs.Tracer) {
	a.tr = tr
	for _, pe := range a.Chains {
		pe.SetTracer(tr)
	}
	for _, ae := range a.Aggs {
		ae.SetTracer(tr)
	}
	for _, e := range a.Ineq {
		e.SetTracer(tr)
	}
	for _, e := range a.Disjunct {
		e.SetTracer(tr)
	}
}

// Recomputes totals the estimator recomputations across every attached
// estimator: chain/inequality/disjunctive republishes plus the distinct-
// value choosers' MLE recomputations (Algorithm 3).
func (a *Attachment) Recomputes() int64 {
	var n int64
	for _, pe := range a.Chains {
		n += pe.Recomputes()
	}
	for _, ae := range a.Aggs {
		n += ae.Recomputes()
		if c := ae.Chooser(); c != nil {
			n += c.Recomputes()
		}
		if t := ae.Tracker(); t != nil {
			n += t.Recomputes()
		}
	}
	for _, e := range a.Ineq {
		n += e.Recomputes()
	}
	for _, e := range a.Disjunct {
		n += e.Recomputes()
	}
	return n
}

// HistogramProbes totals the histogram lookups performed by the chain
// estimators' probe passes (refreshed at publish boundaries).
func (a *Attachment) HistogramProbes() int64 {
	var n int64
	for _, pe := range a.Chains {
		n += pe.HistogramProbes()
	}
	return n
}
