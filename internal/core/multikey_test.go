package core

import (
	"math"
	"math/rand"
	"testing"

	"qpi/internal/exec"
)

// TestMultiKeyJoinCorrectAndEstimated: conjunctive two-column equijoin
// (§4.1's "conjunctions of multiple attributes") — correctness against
// brute force and exact converged estimates.
func TestMultiKeyJoinCorrectAndEstimated(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	n := 300
	bx, by := randCol(rng, n, 8), randCol(rng, n, 6)
	px, py := randCol(rng, n, 8), randCol(rng, n, 6)
	b := table("b", []string{"x", "y"}, bx, by)
	p := table("p", []string{"x", "y"}, px, py)

	var truth int64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if bx[i] == px[k] && by[i] == py[k] {
				truth++
			}
		}
	}

	j := exec.NewHashJoinMulti(exec.NewScan(b, ""), exec.NewScan(p, ""),
		[]int{0, 1}, []int{0, 1}, exec.InnerJoin)
	att := Attach(j)
	pe := att.ChainOf[j]
	if pe == nil {
		t.Fatal("no estimator for multi-key join")
	}
	got, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if got != truth {
		t.Fatalf("join size %d, want brute-force %d", got, truth)
	}
	if est := pe.Estimate(0); math.Abs(est-float64(truth)) > 1e-6 {
		t.Errorf("converged estimate %g != %d", est, truth)
	}
}

// TestMultiKeyChainSameSource: a chain whose upper multi-column key comes
// entirely from the bottom stream resolves and converges exactly.
func TestMultiKeyChainSameSource(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := table("a", []string{"x", "y"}, randCol(rng, 80, 6), randCol(rng, 80, 5))
	b := table("b", []string{"k"}, randCol(rng, 90, 7))
	c := table("c", []string{"k", "x", "y"},
		randCol(rng, 100, 7), randCol(rng, 100, 6), randCol(rng, 100, 5))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "k", "c", "k")
	top := exec.NewHashJoinMulti(exec.NewScan(a, ""), lower,
		[]int{0, 1},
		[]int{lower.Schema().MustResolve("c", "x"), lower.Schema().MustResolve("c", "y")},
		exec.InnerJoin)
	att := Attach(top)
	pe := att.ChainOf[top]
	if pe == nil || pe.Levels() != 2 {
		t.Fatalf("expected 2-level chain, got %v", pe)
	}
	n, err := exec.Run(top)
	if err != nil {
		t.Fatal(err)
	}
	if est := pe.Estimate(0); math.Abs(est-float64(n)) > 1e-6 {
		t.Errorf("top estimate %g != %d", est, n)
	}
	if est := pe.Estimate(1); math.Abs(est-float64(lower.Stats().Emitted.Load())) > 1e-6 {
		t.Errorf("lower estimate %g != %d", est, lower.Stats().Emitted.Load())
	}
}

// TestMultiKeyMixedProvenanceFallsBack: an upper key drawing one column
// from the bottom stream and one from the lower build relation cannot be
// chained; each join gets its own single-link estimator, and both still
// converge exactly.
func TestMultiKeyMixedProvenanceFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := table("a", []string{"x", "y"}, randCol(rng, 70, 6), randCol(rng, 70, 5))
	b := table("b", []string{"k", "y"}, randCol(rng, 80, 7), randCol(rng, 80, 5))
	c := table("c", []string{"k", "x"}, randCol(rng, 90, 7), randCol(rng, 90, 6))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "k", "c", "k")
	top := exec.NewHashJoinMulti(exec.NewScan(a, ""), lower,
		[]int{0, 1},
		[]int{lower.Schema().MustResolve("c", "x"), lower.Schema().MustResolve("b", "y")},
		exec.InnerJoin)
	att := Attach(top)
	peTop, peLower := att.ChainOf[top], att.ChainOf[lower]
	if peTop == nil || peLower == nil {
		t.Fatal("fallback should attach single-link estimators to both joins")
	}
	if peTop == peLower {
		t.Fatal("mixed provenance must not be chained")
	}
	n, err := exec.Run(top)
	if err != nil {
		t.Fatal(err)
	}
	if est := peTop.Estimate(0); math.Abs(est-float64(n)) > 1e-6 {
		t.Errorf("top estimate %g != %d", est, n)
	}
	if est := peLower.Estimate(0); math.Abs(est-float64(lower.Stats().Emitted.Load())) > 1e-6 {
		t.Errorf("lower estimate %g != %d", est, lower.Stats().Emitted.Load())
	}
}

// TestMultiKeyNullComponents: a NULL in any key component prevents the
// match (and the estimator agrees).
func TestMultiKeyNullComponents(t *testing.T) {
	b := table("b", []string{"x", "y"}, []int64{1, 1}, []int64{2, 2})
	p := table("p", []string{"x", "y"}, []int64{1}, []int64{2})
	// Inject a NULL into the build side.
	bScan := exec.NewScan(b, "")
	j := exec.NewHashJoinMulti(bScan, exec.NewScan(p, ""),
		[]int{0, 1}, []int{0, 1}, exec.InnerJoin)
	att := Attach(j)
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("join size %d, want 2", n)
	}
	if est := att.ChainOf[j].Estimate(0); est != 2 {
		t.Errorf("estimate %g", est)
	}
}
