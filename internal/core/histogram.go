// Package core implements the paper's online cardinality estimation
// framework ("once"): exact frequency histograms built during operator
// preprocessing phases, incrementally-updated join estimators with
// confidence intervals (§4.1), push-down estimation for pipelines of hash
// joins (Algorithm 1, §4.1.4), the dne and byte baseline estimators, and
// the glue that attaches all of them to an executor plan.
package core

import (
	"sort"

	"qpi/internal/data"
	"qpi/internal/hashtab"
)

// FreqHistogram is an exact value-frequency histogram: for every distinct
// value v it maintains N_v, the number of times v was observed (§4.1.1's
// N^R_i counts). It also supports weighted increments, which the derived
// histograms of Case 2 pipelines need (§4.1.4.2), and tracks the memory
// accounting reported in the paper's Table 2.
//
// Integer keys — the overwhelmingly common join-key type — take a fast
// path through an open-addressing hashtab.I64Map, keeping the per-tuple
// overhead of the estimation framework small (the paper's "lightweight"
// requirement); other kinds share a map keyed by data.Value.
type FreqHistogram struct {
	ints  hashtab.I64Map[int64]
	other map[data.Value]int64
	total int64 // sum of all counts (weighted observations)

	// prof, when enabled by TrackProfile, is the frequency-of-frequencies
	// profile f_j maintained incrementally on every update: a count
	// transition c → c+w costs two profile touches instead of a full
	// histogram scan per estimator refresh.
	prof map[int64]int64
}

// NewFreqHistogram creates an empty histogram.
func NewFreqHistogram() *FreqHistogram {
	return &FreqHistogram{}
}

// TrackProfile turns on incremental maintenance of the
// frequency-of-frequencies profile, back-filling from any counts already
// present. Profile then returns the live profile without rescanning the
// histogram — the refresh path of the push-down aggregation estimators,
// which would otherwise rebuild the profile on every publish boundary.
func (h *FreqHistogram) TrackProfile() *FreqHistogram {
	if h.prof == nil {
		h.prof = h.FrequencyOfFrequencies()
	}
	return h
}

// profShift moves one value's profile mass from count old to count new.
func (h *FreqHistogram) profShift(old, new int64) {
	if h.prof == nil {
		return
	}
	if old != 0 {
		if h.prof[old]--; h.prof[old] == 0 {
			delete(h.prof, old)
		}
	}
	if new != 0 {
		h.prof[new]++
	}
}

// Add counts one observation of v. NULLs are ignored (they never join or
// group with anything under our key semantics).
func (h *FreqHistogram) Add(v data.Value) {
	if v.Kind == data.KindInt {
		p := h.ints.Ref(v.I)
		*p++
		h.total++
		if h.prof != nil {
			h.profShift(*p-1, *p)
		}
		return
	}
	h.AddN(v, 1)
}

// AddN counts w observations of v.
func (h *FreqHistogram) AddN(v data.Value, w int64) {
	if v.IsNull() || w == 0 {
		return
	}
	var old, new int64
	if v.Kind == data.KindInt {
		p := h.ints.Ref(v.I)
		old = *p
		*p += w
		new = *p
	} else {
		if h.other == nil {
			h.other = make(map[data.Value]int64)
		}
		old = h.other[v]
		h.other[v] = old + w
		new = old + w
	}
	h.total += w
	h.profShift(old, new)
}

// ObserveColumn counts one observation of every live value in a flat
// int64 key column — the span-at-a-time form of Add used by the columnar
// partition passes. sel selects the live rows (nil = all n values) and
// nulls flags NULL rows, which are skipped exactly as Add skips NULL
// values; the resulting histogram state is identical to calling Add row
// by row over the same span.
func (h *FreqHistogram) ObserveColumn(vals []int64, sel []int32, nulls data.Bitmap) {
	add := func(i int) {
		if nulls.Get(i) {
			return
		}
		p := h.ints.Ref(vals[i])
		*p++
		h.total++
		if h.prof != nil {
			h.profShift(*p-1, *p)
		}
	}
	if sel == nil {
		for i := range vals {
			add(i)
		}
	} else {
		for _, i := range sel {
			add(int(i))
		}
	}
}

// CountInt returns N_v for an integer key without boxing it in a Value —
// the probe-side span companion of ObserveColumn.
func (h *FreqHistogram) CountInt(v int64) int64 {
	n, _ := h.ints.Get(v)
	return n
}

// Count returns N_v.
func (h *FreqHistogram) Count(v data.Value) int64 {
	if v.Kind == data.KindInt {
		n, _ := h.ints.Get(v.I)
		return n
	}
	if h.other == nil {
		return 0
	}
	return h.other[v]
}

// Distinct returns the number of distinct values observed.
func (h *FreqHistogram) Distinct() int64 { return int64(h.ints.Len() + len(h.other)) }

// Total returns the sum of all counts.
func (h *FreqHistogram) Total() int64 { return h.total }

// Each calls f for every (value, count) pair, in unspecified order. f
// returning false stops the iteration.
func (h *FreqHistogram) Each(f func(v data.Value, n int64) bool) {
	stopped := false
	h.ints.Each(func(i int64, n int64) bool {
		if !f(data.Int(i), n) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for v, n := range h.other {
		if !f(v, n) {
			return
		}
	}
}

// FrequencyOfFrequencies returns the f_j profile used by the distinct-value
// estimators: result[j] = number of values observed exactly j times. It
// always rescans; estimator refresh paths should use Profile instead.
func (h *FreqHistogram) FrequencyOfFrequencies() map[int64]int64 {
	f := make(map[int64]int64)
	h.ints.Each(func(_ int64, n int64) bool {
		if n != 0 {
			f[n]++
		}
		return true
	})
	for _, n := range h.other {
		if n != 0 {
			f[n]++
		}
	}
	return f
}

// Profile returns the frequency-of-frequencies profile: the incrementally
// maintained one when TrackProfile is on (shared, read-only — O(1) per
// call), a fresh scan otherwise.
func (h *FreqHistogram) Profile() map[int64]int64 {
	if h.prof != nil {
		return h.prof
	}
	return h.FrequencyOfFrequencies()
}

// TopK returns the k most frequent values (ties broken by value order).
func (h *FreqHistogram) TopK(k int) []struct {
	Value data.Value
	Count int64
} {
	type vc struct {
		Value data.Value
		Count int64
	}
	all := make([]vc, 0, h.Distinct())
	h.Each(func(v data.Value, n int64) bool {
		all = append(all, vc{v, n})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return data.Compare(all[i].Value, all[j].Value) < 0
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]struct {
		Value data.Value
		Count int64
	}, len(all))
	for i, e := range all {
		out[i] = struct {
			Value data.Value
			Count int64
		}{e.Value, e.Count}
	}
	return out
}

// Memory accounting (paper §5.2.1 / Table 2). The paper stores 8 bytes of
// payload per entry (4-byte value + 4-byte count) inside PostgreSQL's
// generic hash table, observing ~20 bytes of overhead per entry from the
// hash table's pointers. Our integer entries live in an open-addressing
// table of int64 key/count pairs.

// entryPayloadBytes is the payload the paper counts per entry: the value
// and its count.
const entryPayloadBytes = 8

// goMapEntryOverhead approximates the per-entry cost of a Go
// map[data.Value]int64 entry (the non-integer fallback): 40-byte key plus
// bucket headers, overflow pointers and spare bucket capacity.
const goMapEntryOverhead = 16 + 12

// MemoryUsed returns the bytes of live histogram payload, in the paper's
// accounting: 8 bytes per entry plus the bytes of any string keys.
func (h *FreqHistogram) MemoryUsed() int64 {
	used := h.Distinct() * entryPayloadBytes
	for v := range h.other {
		if v.Kind == data.KindString {
			used += int64(len(v.S))
		}
	}
	return used
}

// MemoryAllocated estimates the bytes actually allocated by the backing
// tables, the analogue of the paper's "Mem. Alloc." column: the
// open-addressing table allocates 16 bytes per slot (int64 key + int64
// count) at ≤ 7/8 load.
func (h *FreqHistogram) MemoryAllocated() int64 {
	alloc := int64(h.ints.Slots()) * 16
	for v := range h.other {
		alloc += entryPayloadBytes + goMapEntryOverhead + 32 // data.Value key
		if v.Kind == data.KindString {
			alloc += int64(len(v.S))
		}
	}
	return alloc
}
