package core

import (
	"math"
	"math/rand"
	"testing"

	"qpi/internal/exec"
)

// runTypedJoin runs a typed binary join with the framework attached and
// checks the converged estimate equals the true output size.
func runTypedJoin(t *testing.T, jt exec.JoinType, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := table("b", []string{"k"}, randCol(rng, 150, 30))
	p := table("p", []string{"k"}, randCol(rng, 220, 30))
	j := exec.NewHashJoinTyped(exec.NewScan(b, ""), exec.NewScan(p, ""), 0, 0, jt)
	att := Attach(j)
	pe := att.ChainOf[j]
	if pe == nil {
		t.Fatal("no estimator attached")
	}
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Converged() {
		t.Fatal("did not converge")
	}
	if got := pe.Estimate(0); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("%v join: estimate %g != true size %d", jt, got, n)
	}
}

func TestTypedJoinEstimatesExact(t *testing.T) {
	for i, jt := range []exec.JoinType{
		exec.InnerJoin, exec.SemiJoin, exec.AntiJoin, exec.ProbeOuterJoin,
	} {
		runTypedJoin(t, jt, int64(40+i))
	}
}

func TestSemiTopOfChainEstimatesExact(t *testing.T) {
	// semi(A) over inner(B ⋈ C): the top link uses the semi multiplicity
	// while the inner level below estimates normally.
	rng := rand.New(rand.NewSource(50))
	a := table("a", []string{"x"}, randCol(rng, 80, 12))
	b := table("b", []string{"x"}, randCol(rng, 90, 12))
	c := table("c", []string{"x"}, randCol(rng, 100, 12))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	top := exec.NewHashJoinTyped(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve("c", "x"), exec.SemiJoin)
	att := Attach(top)
	pe := att.ChainOf[top]
	if pe == nil || pe.Levels() != 2 {
		t.Fatalf("chain levels = %v", pe)
	}
	if _, err := exec.Run(top); err != nil {
		t.Fatal(err)
	}
	if got, want := pe.Estimate(0), float64(top.Stats().Emitted.Load()); math.Abs(got-want) > 1e-6 {
		t.Errorf("semi top estimate %g != %g", got, want)
	}
	if got, want := pe.Estimate(1), float64(lower.Stats().Emitted.Load()); math.Abs(got-want) > 1e-6 {
		t.Errorf("inner lower estimate %g != %g", got, want)
	}
}

func TestOuterTopCase2EstimatesExact(t *testing.T) {
	// outer join keyed off the lower build relation: exercises the Mult
	// transform inside the derived-histogram fold weights.
	rng := rand.New(rand.NewSource(51))
	a := table("a", []string{"y"}, randCol(rng, 70, 9))
	b := table("b", []string{"x", "y"}, randCol(rng, 80, 11), randCol(rng, 80, 9))
	c := table("c", []string{"x"}, randCol(rng, 90, 11))
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "x", "c", "x")
	top := exec.NewHashJoinTyped(exec.NewScan(a, ""), lower,
		0, lower.Schema().MustResolve("b", "y"), exec.ProbeOuterJoin)
	att := Attach(top)
	pe := att.ChainOf[top]
	if _, err := exec.Run(top); err != nil {
		t.Fatal(err)
	}
	if got, want := pe.Estimate(0), float64(top.Stats().Emitted.Load()); math.Abs(got-want) > 1e-6 {
		t.Errorf("outer Case 2 estimate %g != %g", got, want)
	}
}

func TestNonInnerChildTerminatesChain(t *testing.T) {
	// inner(A, semi(B, C)): the semi join must root its own chain.
	rng := rand.New(rand.NewSource(52))
	a := table("a", []string{"x"}, randCol(rng, 60, 8))
	b := table("b", []string{"x"}, randCol(rng, 70, 8))
	c := table("c", []string{"x"}, randCol(rng, 80, 8))
	lower := exec.NewHashJoinTyped(exec.NewScan(b, ""), exec.NewScan(c, ""), 0, 0, exec.SemiJoin)
	top := exec.NewHashJoin(exec.NewScan(a, ""), lower, 0, 0)
	att := Attach(top)
	if att.ChainOf[top] == att.ChainOf[lower] {
		t.Fatal("semi join should root its own chain")
	}
	if att.ChainOf[top].Levels() != 1 || att.ChainOf[lower].Levels() != 1 {
		t.Errorf("chain levels = %d, %d", att.ChainOf[top].Levels(), att.ChainOf[lower].Levels())
	}
	if _, err := exec.Run(top); err != nil {
		t.Fatal(err)
	}
	// Both converge to their exact sizes regardless.
	if got, want := att.ChainOf[lower].Estimate(0), float64(lower.Stats().Emitted.Load()); math.Abs(got-want) > 1e-6 {
		t.Errorf("semi estimate %g != %g", got, want)
	}
	if got, want := att.ChainOf[top].Estimate(0), float64(top.Stats().Emitted.Load()); math.Abs(got-want) > 1e-6 {
		t.Errorf("upper estimate %g != %g", got, want)
	}
}
