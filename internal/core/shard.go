package core

import (
	"qpi/internal/data"
	"qpi/internal/exec"
)

// This file is the batched (sharded) attachment mode of the pipeline
// estimator, backing the executor's parallel grace partition passes.
//
// In the default mode the estimator observes one tuple per hook call on
// the execution goroutine. Under a batched pass the hash/scatter work of
// a join's partition passes runs on K workers, so the estimator instead
// installs batch hooks (ChainLink.SetBuildBatchHook, HashJoin.OnProbeBatch)
// and gives every worker a private shard — per-relation frequency-
// histogram shards for the build passes, {t, sums, sumSqs, outDist}
// shards for the bottom probe pass. Shards merge into the shared state at
// the pass barriers (OnBuildEnd / OnProbeEnd), which the executor fires
// on the reader goroutine after its workers have joined.
//
// Correctness of lock-free shard updates rests on the chain's execution
// order: relation R_0 is built first, then R_1, ..., R_{m-1}, then the
// bottom stream C is observed. A build-pass worker for relation j folds
// in histogram counts only of relations f.join < j — all fully built and
// merged at earlier barriers — and a probe-pass worker reads only the
// finished build histograms. Every mutation goes to worker-private state;
// the merges happen single-threaded at the barriers. The §4.1.1
// convergence guarantee is preserved: after the probe-end merge the
// estimator has observed exactly the same multiset of tuples as the
// serial mode, so MarkConverged publishes the same exact cardinalities.
//
// Estimates are published only at barriers in this mode (the serial mode
// publishes every publishEvery probe tuples): Stats writes stay on the
// execution goroutine, never on workers.

// probeShard is one worker's private share of the probe-pass moments.
type probeShard struct {
	t       int64
	sums    []float64
	sumSqs  []float64
	outDist *FreqHistogram
}

// installBatchHooks wires the sharded build observers (batched mode's
// installHooks). For every relation j each of the pass's workers gets one
// FreqHistogram shard per distinct update target; the barrier hook merges
// them into the shared derived histograms.
func (p *PipelineEstimator) installBatchHooks() {
	p.batchInstalled = true
	for j := 0; j < p.m; j++ {
		j := j
		updates := p.updateTargets(j)
		buildKeys := p.links[j].BuildKeys
		shards := make([][]*FreqHistogram, p.links[j].Workers)
		for w := range shards {
			shards[w] = make([]*FreqHistogram, len(updates))
			for u := range shards[w] {
				shards[w][u] = NewFreqHistogram()
			}
		}
		p.links[j].SetBuildBatchHook(func(worker int, b data.Batch) {
			sh := shards[worker]
			for _, tu := range b {
				key := exec.JoinKeyOf(tu, buildKeys)
				for ui, u := range updates {
					sh[ui].AddN(key, p.buildWeight(tu, j, u.level))
				}
			}
		})
		p.links[j].SetBuildEndHook(func() {
			for _, sh := range shards {
				for ui, u := range updates {
					dst := p.hists[u.level][j]
					sh[ui].Each(func(v data.Value, n int64) bool {
						dst.AddN(v, n)
						return true
					})
				}
			}
		})
	}
	p.probeShards = make([]probeShard, p.links[p.m-1].Workers)
	for i := range p.probeShards {
		p.probeShards[i] = probeShard{
			sums:   make([]float64, p.m),
			sumSqs: make([]float64, p.m),
		}
	}
}

// BatchAttached reports whether the estimator observes through sharded
// batch hooks instead of per-tuple hooks.
func (p *PipelineEstimator) BatchAttached() bool { return p.batchInstalled }

// ObserveProbeBatch processes one bottom-stream batch on behalf of worker
// w: the batched counterpart of ObserveProbe, accumulating into the
// worker's private shard. No estimate is published until FinishProbe.
func (p *PipelineEstimator) ObserveProbeBatch(w int, b data.Batch) {
	sh := &p.probeShards[w]
	for _, c := range b {
		p.observeProbeShard(sh, c)
	}
}

// observeProbeShard accumulates one bottom-stream tuple into a worker's
// probe shard: the shard-local body of ObserveProbe, shared by the
// batched row mode and the sharded columnar mode (colshard.go).
func (p *PipelineEstimator) observeProbeShard(sh *probeShard, c data.Tuple) {
	sh.t++
	for k := 0; k < p.m; k++ {
		delta := p.probeDelta(c, k)
		sh.sums[k] += delta
		sh.sumSqs[k] += delta * delta
		if k == 0 && p.outDistHist != nil {
			if sh.outDist == nil {
				sh.outDist = NewFreqHistogram()
			}
			sh.outDist.AddN(c[p.outDistCol], int64(delta))
		}
	}
}

// FinishProbe merges the per-worker probe shards and freezes the
// estimator — the batched mode's MarkConverged, composed onto the bottom
// join's OnProbeEnd. It runs on the execution goroutine after the pass
// barrier.
func (p *PipelineEstimator) FinishProbe() {
	for i := range p.probeShards {
		sh := &p.probeShards[i]
		p.t += sh.t
		for k := 0; k < p.m; k++ {
			p.sums[k] += sh.sums[k]
			p.sumSqs[k] += sh.sumSqs[k]
		}
		if sh.outDist != nil && p.outDistHist != nil {
			sh.outDist.Each(func(v data.Value, n int64) bool {
				p.outDistHist.AddN(v, n)
				return true
			})
		}
	}
	p.probeShards = nil
	if p.OnProbeObserved != nil {
		p.OnProbeObserved(p.t)
	}
	p.MarkConverged()
	for _, f := range p.afterConverge {
		f()
	}
}
