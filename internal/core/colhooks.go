package core

import (
	"qpi/internal/data"
	"qpi/internal/exec"
)

// This file implements span-at-a-time estimator observation for columnar
// chains: instead of one callback per tuple, the build and probe
// partition passes deliver whole ColBatches at batch boundaries and the
// estimator walks the key lanes directly. The columnar passes are
// serial, so the hooks update the histograms in place, in row order —
// every accumulation happens in exactly the order the per-tuple hooks
// would have produced, so estimator state stays bit-identical to the
// tuple path (a property the differential tests assert).

// ColAttached reports whether the estimator observes its chain through
// the span-at-a-time columnar hooks.
func (p *PipelineEstimator) ColAttached() bool { return p.colInstalled }

// installColHooks attaches the span-at-a-time build observers for a
// columnar chain: one callback per build-input ColBatch. The dominant
// single-integer-key, fold-free case updates the frequency histograms
// straight off the flat int64 key lane (FreqHistogram.ObserveColumn);
// relations with folds, composite keys, or non-integer key columns fall
// back to a per-row loop in row order — histogram state is identical to
// the per-tuple hooks either way, because integer count increments
// commute and the fallback preserves the exact row order.
func (p *PipelineEstimator) installColHooks() {
	p.colInstalled = true
	for j := 0; j < p.m; j++ {
		j := j
		updates := p.updateTargets(j)
		buildKeys := p.links[j].BuildKeys
		var fastHists []*FreqHistogram
		if len(buildKeys) == 1 && len(p.folds[j]) == 0 {
			for _, u := range updates {
				fh, ok := u.hist.(*FreqHistogram)
				if !ok {
					fastHists = nil
					break
				}
				fastHists = append(fastHists, fh)
			}
		}
		keyCol := buildKeys[0]
		p.links[j].SetBuildColHook(func(cb *data.ColBatch) {
			if fastHists != nil {
				if kv := cb.Col(keyCol); kv.Homogeneous() && kv.Kind == data.KindInt {
					for _, fh := range fastHists {
						fh.ObserveColumn(kv.Ints, cb.Sel, kv.Nulls)
					}
					return
				}
			}
			rows := cb.MaterializeRows()
			observe := func(i int) {
				key := exec.JoinKeyOf(rows[i], buildKeys)
				for _, u := range updates {
					p.hists[u.level][j].AddN(key, p.buildWeight(rows[i], j, u.level))
				}
			}
			if cb.Sel == nil {
				for i := 0; i < cb.NRows; i++ {
					observe(i)
				}
			} else {
				for _, i := range cb.Sel {
					observe(int(i))
				}
			}
		})
	}
}

// ObserveProbeCol processes one bottom-stream ColBatch — the
// span-at-a-time form of ObserveProbe, invoked once per batch by the
// bottom join's columnar probe partition pass. The single-join
// single-integer-key case reads the flat key lane directly, performing
// the same float accumulations in the same order as the tuple path; the
// general case materializes rows and runs ObserveProbe per live row, so
// publish cadence, output-distribution accumulation, and the
// OnProbeObserved callback are preserved exactly.
func (p *PipelineEstimator) ObserveProbeCol(cb *data.ColBatch) {
	if p.observeProbeColFast(cb) {
		return
	}
	rows := cb.MaterializeRows()
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			p.ObserveProbe(rows[i])
		}
	} else {
		for _, i := range cb.Sel {
			p.ObserveProbe(rows[i])
		}
	}
}

// observeProbeColFast handles the vectorizable probe case: a single
// inner join whose probe key is one homogeneous integer column, no
// output-distribution accumulation and no per-tuple callback. Each live
// row performs t++, one CountInt lookup (0 for NULL keys, matching
// Count over a NULL join key), and the identical float accumulation and
// publish check ObserveProbe performs — same operations, same order,
// bit-identical state.
func (p *PipelineEstimator) observeProbeColFast(cb *data.ColBatch) bool {
	if p.m != 1 || p.outDistHist != nil || p.OnProbeObserved != nil || p.links[0].Mult != nil {
		return false
	}
	src := p.srcs[0]
	if !src.fromBottom || len(src.cols) != 1 {
		return false
	}
	fh, ok := p.hists[0][0].(*FreqHistogram)
	if !ok {
		return false
	}
	kv := cb.Col(src.cols[0])
	if !kv.Homogeneous() || kv.Kind != data.KindInt {
		return false
	}
	observe := func(i int) {
		p.t++
		var delta float64
		if !kv.Nulls.Get(i) {
			delta = float64(fh.CountInt(kv.Ints[i]))
		}
		p.sums[0] += delta
		p.sumSqs[0] += delta * delta
		if p.t%p.publishEvery == 0 {
			p.publish()
		}
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			observe(i)
		}
	} else {
		for _, i := range cb.Sel {
			observe(int(i))
		}
	}
	return true
}
