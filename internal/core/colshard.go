package core

import (
	"qpi/internal/data"
	"qpi/internal/exec"
)

// This file is the sharded columnar attachment mode of the pipeline
// estimator, backing the executor's morsel-driven columnar partition
// passes: the intersection of the batched (sharded) mode of shard.go and
// the span-at-a-time columnar mode of colhooks.go. Under a morselized
// columnar pass K scan workers deliver ColBatches concurrently, so the
// estimator gives every worker a private shard — per-relation frequency-
// histogram shards for the build passes, probeShard moment shards for the
// bottom probe pass — and walks the flat key lanes inside the shard.
// Shards merge single-threaded at the pass barriers (the build-end hook,
// FinishProbe on probe end), exactly as in the batched row mode.
//
// The bit-identical-to-serial argument is the union of the two parent
// modes': every histogram mutation is an integer AddN into a private
// FreqHistogram shard, merged in fixed worker order (counts commute);
// probe moment deltas are integer-valued float64 sums accumulated per
// shard and folded at the barrier (exact below 2^53, order-independent);
// build weights and probe deltas read only histograms frozen at earlier
// barriers. Estimates publish only at barriers, on the coordinator.

// ColShardAttached reports whether the estimator observes its chain
// through worker-indexed columnar span hooks.
func (p *PipelineEstimator) ColShardAttached() bool { return p.colShardInstalled }

// installColShardHooks wires the sharded span-at-a-time build observers
// for a morselized columnar chain. Per relation j, each of the pass's
// workers gets one FreqHistogram shard per distinct update target; the
// dominant single-integer-key, fold-free case observes the flat int64
// key lane straight into the worker's shard, and the barrier hook merges
// shards into the shared derived histograms in worker order.
func (p *PipelineEstimator) installColShardHooks() {
	p.colShardInstalled = true
	for j := 0; j < p.m; j++ {
		j := j
		updates := p.updateTargets(j)
		buildKeys := p.links[j].BuildKeys
		// Unlike the serial columnar fast path, shard targets are always
		// FreqHistograms regardless of the shared histogram implementation,
		// so lane observation only needs a single key and no folds.
		laneFast := len(buildKeys) == 1 && len(p.folds[j]) == 0
		keyCol := buildKeys[0]
		shards := make([][]*FreqHistogram, p.links[j].Workers)
		for w := range shards {
			shards[w] = make([]*FreqHistogram, len(updates))
			for u := range shards[w] {
				shards[w][u] = NewFreqHistogram()
			}
		}
		p.links[j].SetBuildColBatchHook(func(worker int, cb *data.ColBatch) {
			sh := shards[worker]
			if laneFast {
				if kv := cb.Col(keyCol); kv.Homogeneous() && kv.Kind == data.KindInt {
					for _, fh := range sh {
						fh.ObserveColumn(kv.Ints, cb.Sel, kv.Nulls)
					}
					return
				}
			}
			rows := cb.MaterializeRows()
			observe := func(i int) {
				key := exec.JoinKeyOf(rows[i], buildKeys)
				for ui, u := range updates {
					sh[ui].AddN(key, p.buildWeight(rows[i], j, u.level))
				}
			}
			if cb.Sel == nil {
				for i := 0; i < cb.NRows; i++ {
					observe(i)
				}
			} else {
				for _, i := range cb.Sel {
					observe(int(i))
				}
			}
		})
		p.links[j].SetBuildEndHook(func() {
			for _, sh := range shards {
				for ui, u := range updates {
					dst := p.hists[u.level][j]
					sh[ui].Each(func(v data.Value, n int64) bool {
						dst.AddN(v, n)
						return true
					})
				}
			}
		})
	}
	p.probeShards = make([]probeShard, p.links[p.m-1].Workers)
	for i := range p.probeShards {
		p.probeShards[i] = probeShard{
			sums:   make([]float64, p.m),
			sumSqs: make([]float64, p.m),
		}
	}
}

// ObserveProbeColShard processes one bottom-stream ColBatch on behalf of
// worker w — the sharded form of ObserveProbeCol, invoked lock-free by
// the owning scan worker of a morselized probe pass. No estimate is
// published until FinishProbe merges the shards at the pass barrier.
func (p *PipelineEstimator) ObserveProbeColShard(w int, cb *data.ColBatch) {
	sh := &p.probeShards[w]
	if p.observeProbeColShardFast(sh, cb) {
		return
	}
	rows := cb.MaterializeRows()
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			p.observeProbeShard(sh, rows[i])
		}
	} else {
		for _, i := range cb.Sel {
			p.observeProbeShard(sh, rows[i])
		}
	}
}

// observeProbeColShardFast is the vectorizable probe case of the sharded
// columnar mode: a single inner join whose probe key is one homogeneous
// integer column and no output-distribution accumulation. Each live row
// performs t++, one CountInt lookup (0 for NULL keys) and the moment
// accumulation into the worker's shard — the same arithmetic the serial
// fast path performs, minus the publish check (sharded mode publishes at
// the barrier). OnProbeObserved does not bail the fast path: as in the
// batched row mode it fires once from FinishProbe with the merged count.
func (p *PipelineEstimator) observeProbeColShardFast(sh *probeShard, cb *data.ColBatch) bool {
	if p.m != 1 || p.outDistHist != nil || p.links[0].Mult != nil {
		return false
	}
	src := p.srcs[0]
	if !src.fromBottom || len(src.cols) != 1 {
		return false
	}
	fh, ok := p.hists[0][0].(*FreqHistogram)
	if !ok {
		return false
	}
	kv := cb.Col(src.cols[0])
	if !kv.Homogeneous() || kv.Kind != data.KindInt {
		return false
	}
	observe := func(i int) {
		sh.t++
		var delta float64
		if !kv.Nulls.Get(i) {
			delta = float64(fh.CountInt(kv.Ints[i]))
		}
		sh.sums[0] += delta
		sh.sumSqs[0] += delta * delta
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			observe(i)
		}
	} else {
		for _, i := range cb.Sel {
			observe(int(i))
		}
	}
	return true
}
