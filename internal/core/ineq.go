package core

import (
	"sort"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/obs"
)

// InequalityEstimator estimates the size of a non-equi (theta) join
// R.x θ S.y, the "other kinds of join predicates (e.g., R.x > S.y)" of
// §4.1. It attaches to a nested-loops join whose inner input is
// materialized first and whose outer input is pre-sorted: the inner
// materialization pass collects the inner key values, and the outer
// sort's input pass — a random-order stream, before the join emits
// anything — counts each outer tuple's matches with an order-statistic
// (binary search) query:
//
//	D_t = |Outer|/t · Σ count(outer_i θ inner)
//
// converging to the exact theta-join size by the end of the sort input.
type InequalityEstimator struct {
	join exec.Operator
	op   expr.CmpOp

	keys   []float64 // inner key values (numeric), sorted lazily
	nulls  int64     // inner NULLs never match
	sorted bool

	outerTotal func() float64
	t          int64
	sum        float64
	frozen     bool

	refineTrace
}

// SetTracer routes the estimator's refinement events into tr.
func (e *InequalityEstimator) SetTracer(tr *obs.Tracer) {
	e.bindTracer(tr, e.join.Name(), "ineq")
}

// NewInequalityEstimator creates an estimator for join with comparison op
// (outer value on the left). outerTotal returns the live estimate of the
// outer input size.
func NewInequalityEstimator(join exec.Operator, op expr.CmpOp, outerTotal func() float64) *InequalityEstimator {
	return &InequalityEstimator{join: join, op: op, outerTotal: outerTotal}
}

// ObserveInner records one inner join-key value during materialization.
func (e *InequalityEstimator) ObserveInner(v data.Value) {
	if v.IsNull() || v.Kind == data.KindString {
		e.nulls++
		return
	}
	e.keys = append(e.keys, v.AsFloat())
	e.sorted = false
}

// count returns how many inner values satisfy (outer op inner).
func (e *InequalityEstimator) count(outer data.Value) int64 {
	if !e.sorted {
		sort.Float64s(e.keys)
		e.sorted = true
	}
	if outer.IsNull() || outer.Kind == data.KindString {
		return 0
	}
	x := outer.AsFloat()
	n := len(e.keys)
	// lower = #inner < x, upper = #inner <= x.
	lower := sort.SearchFloat64s(e.keys, x)
	upper := sort.Search(n, func(i int) bool { return e.keys[i] > x })
	eq := int64(upper - lower)
	switch e.op {
	case expr.EQ:
		return eq
	case expr.NE:
		return int64(n) - eq
	case expr.LT: // outer < inner  → inner > outer
		return int64(n - upper)
	case expr.LE:
		return int64(n - lower)
	case expr.GT: // outer > inner  → inner < outer
		return int64(lower)
	default: // GE
		return int64(upper)
	}
}

// ObserveOuter processes one outer tuple's join value during the sort's
// input pass, refreshing the join's estimate.
func (e *InequalityEstimator) ObserveOuter(v data.Value) {
	e.t++
	e.sum += float64(e.count(v))
	if e.t%64 == 0 {
		e.publish()
	}
}

// MarkConverged freezes the estimator when the outer input has been fully
// observed.
func (e *InequalityEstimator) MarkConverged() {
	e.frozen = true
	e.publish()
}

// Converged reports whether the outer input has been fully observed.
func (e *InequalityEstimator) Converged() bool { return e.frozen }

// Estimate returns the current theta-join size estimate.
func (e *InequalityEstimator) Estimate() float64 {
	if e.t == 0 {
		return e.join.Stats().Estimate()
	}
	total := e.outerTotal()
	if e.frozen {
		total = float64(e.t)
	}
	return total * e.sum / float64(e.t)
}

func (e *InequalityEstimator) publish() {
	src := "once"
	if e.frozen {
		src = "once-exact"
	}
	est := e.Estimate()
	e.join.Stats().SetEstimate(est, src)
	e.tracePublish(est, src, 0)
}

// attachSortedOuterThetaNL wires inequality estimation for a theta
// nested-loops join whose predicate is a single column comparison between
// the outer and inner inputs and whose outer input is a Sort.
func (a *Attachment) attachSortedOuterThetaNL(j *exec.NestedLoopsJoin) bool {
	if j.Indexed || j.Pred == nil {
		return false
	}
	cmp, ok := j.Pred.(expr.Cmp)
	if !ok {
		return false
	}
	lc, lok := cmp.L.(expr.Col)
	rcol, rok := cmp.R.(expr.Col)
	if !lok || !rok {
		return false
	}
	outerSort, ok := j.Outer().(*exec.Sort)
	if !ok {
		return false
	}
	outerWidth := j.Outer().Schema().Len()
	// Identify which side of the comparison is the outer column. The
	// predicate indexes the concatenated (outer ⧺ inner) tuple.
	var outerIdx, innerIdx int
	op := cmp.Op
	switch {
	case lc.Index < outerWidth && rcol.Index >= outerWidth:
		outerIdx, innerIdx = lc.Index, rcol.Index-outerWidth
	case rcol.Index < outerWidth && lc.Index >= outerWidth:
		outerIdx, innerIdx = rcol.Index, lc.Index-outerWidth
		op = flipCmp(op)
	default:
		return false
	}
	est := NewInequalityEstimator(j, op, func() float64 {
		return StreamSizeEstimate(outerSort.Children()[0])
	})
	j.OnInnerTuple = compose(j.OnInnerTuple, func(t data.Tuple) {
		est.ObserveInner(t[innerIdx])
	})
	outerSort.OnInput = compose(outerSort.OnInput, func(t data.Tuple) {
		est.ObserveOuter(t[outerIdx])
	})
	outerSort.OnInputEnd = compose0(outerSort.OnInputEnd, est.MarkConverged)
	a.Ineq = append(a.Ineq, est)
	return true
}

// flipCmp mirrors a comparison across its operands.
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op // EQ, NE symmetric
	}
}
