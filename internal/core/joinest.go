package core

import (
	"math"

	"qpi/internal/data"
)

// JoinEstimator is the paper's online join cardinality estimator ("once",
// §4.1.1) for a binary equijoin R ⋈ S with R the build input:
//
//   - during R's preprocessing pass (hash partitioning, or the sort pass
//     of a sort-merge join) ObserveBuild records exact frequency counts
//     N^R_i of the build join key;
//   - during S's first pass, each probe tuple with key i refines the
//     estimate incrementally: D_{t+1} = (D_t·t + N^R_i·|S|) / (t+1),
//     equivalently D_t = |S|/t · Σ N^R over observed keys.
//
// The estimate is unbiased under random probe order, converges to the
// exact join cardinality by the end of the first probe pass, and carries
// a shrinking confidence interval maintained from running moments.
type JoinEstimator struct {
	buildHist *FreqHistogram

	probeSize float64 // |S|, known or estimated
	t         int64   // probe tuples observed
	sum       float64 // Σ N^R_i over observed probe keys
	sumSq     float64 // Σ (N^R_i)² over observed probe keys
	converged bool
}

// NewJoinEstimator creates an estimator. probeSize is the (estimated or
// exact) size of the probe input |S|; it can be revised later with
// SetProbeSize as the estimate of |S| itself is refined.
func NewJoinEstimator(probeSize float64) *JoinEstimator {
	return &JoinEstimator{buildHist: NewFreqHistogram(), probeSize: probeSize}
}

// BuildHistogram exposes the build-side frequency histogram (used by
// pipeline push-down and by the aggregation push-down of §4.2).
func (e *JoinEstimator) BuildHistogram() *FreqHistogram { return e.buildHist }

// ObserveBuild records one build-input tuple's join key.
func (e *JoinEstimator) ObserveBuild(key data.Value) { e.buildHist.Add(key) }

// ObserveProbe records one probe-input tuple's join key during the probe
// partitioning pass and returns the refreshed estimate.
func (e *JoinEstimator) ObserveProbe(key data.Value) float64 {
	n := float64(e.buildHist.Count(key))
	e.t++
	e.sum += n
	e.sumSq += n * n
	return e.Estimate()
}

// SetProbeSize revises |S|.
func (e *JoinEstimator) SetProbeSize(size float64) { e.probeSize = size }

// ProbeSize returns the current |S|.
func (e *JoinEstimator) ProbeSize() float64 { return e.probeSize }

// ProbeTuplesSeen returns t.
func (e *JoinEstimator) ProbeTuplesSeen() int64 { return e.t }

// MarkConverged freezes the estimator once the probe input has been fully
// observed: the estimate is now exact and the confidence interval
// degenerates.
func (e *JoinEstimator) MarkConverged() {
	e.converged = true
	e.probeSize = float64(e.t)
}

// Converged reports whether the whole probe input has been observed.
func (e *JoinEstimator) Converged() bool { return e.converged }

// Estimate returns D_t, the current join cardinality estimate. Before any
// probe tuple is seen it returns 0 (callers should fall back to the
// optimizer estimate until the pipeline starts).
func (e *JoinEstimator) Estimate() float64 {
	if e.t == 0 {
		return 0
	}
	return e.probeSize * e.sum / float64(e.t)
}

// ConfidenceInterval returns the two-sided α confidence interval for the
// join cardinality using the sample variance of the per-probe-tuple
// contributions X_j = N^R(key_j): D_t ± z_α·s_X·|S|/√t. When converged
// it returns the exact value twice.
func (e *JoinEstimator) ConfidenceInterval(alpha float64) (lo, hi float64) {
	d := e.Estimate()
	if e.converged || e.t < 2 {
		return d, d
	}
	t := float64(e.t)
	variance := (e.sumSq - e.sum*e.sum/t) / (t - 1)
	if variance < 0 {
		variance = 0
	}
	// Finite population correction: the probe "sample" is drawn without
	// replacement from the |S| tuples.
	fpc := 1.0
	if e.probeSize > 1 && t < e.probeSize {
		fpc = (e.probeSize - t) / (e.probeSize - 1)
	}
	half := ZForConfidence(alpha) * math.Sqrt(variance*fpc/t) * e.probeSize
	lo, hi = d-half, d+half
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// WorstCaseBound returns the distribution-free half-width from the
// paper's p(1-p) ≤ 1/4 bound: with probability α each key-fraction
// estimate is within β/2 = z_α/(2√t), giving a cardinality half-width of
// |R|·|S|·z_α/(2√t). It is looser than ConfidenceInterval but needs no
// observed moments.
func (e *JoinEstimator) WorstCaseBound(alpha float64) float64 {
	if e.t == 0 {
		return math.Inf(1)
	}
	r := float64(e.buildHist.Total())
	return r * e.probeSize * ZForConfidence(alpha) / (2 * math.Sqrt(float64(e.t)))
}
