package core

import (
	"qpi/internal/data"
	"qpi/internal/distinct"
	"qpi/internal/exec"
	"qpi/internal/obs"
)

// AggEstimator refines the output-cardinality (number of groups) estimate
// of an aggregation operator online (§4.2). Two modes:
//
//   - Stream mode: the aggregation input is (approximately) randomly
//     ordered; a GEE/MLE chooser observes the grouping key of every input
//     tuple during the aggregation's blocking read.
//   - Push-down mode (§4.2 end): the input is the clustered output of a
//     join on the same attribute as the grouping. Estimation is pushed
//     into the join's probe pass: an output-distribution histogram
//     accumulates, per probe tuple with key v, the N^R_v output tuples
//     that v will produce, and the estimators run over that histogram's
//     frequency profile with |T| = the join's own online size estimate.
type AggEstimator struct {
	agg   exec.Operator // *exec.HashAgg or *exec.SortAgg
	total func() float64

	// Stream mode (SortAgg: the estimator hashes group keys itself).
	chooser *distinct.Chooser
	seen    int64

	// Tracker mode (HashAgg: rides the aggregation's own hash table via
	// the group-count hook — no extra hashing).
	tracker *distinct.ProfileTracker

	// Push-down mode.
	outHist  *FreqHistogram
	joinSize func() float64
	tau      float64

	// Observability: publish boundaries emit EstimateRefined events and
	// SourceTransition events for gee↔mle chooser flips (with the γ² skew
	// measure that crossed τ).
	refineTrace
}

// SetTracer routes the estimator's refinement events into tr (nil
// disables), caching the aggregation's label.
func (a *AggEstimator) SetTracer(tr *obs.Tracer) {
	a.bindTracer(tr, a.agg.Name(), "agg")
}

// newStreamAggEstimator attaches a chooser-based estimator fed by the
// aggregation's own input pass. total returns the current estimate of the
// aggregation input size |T|.
func newStreamAggEstimator(agg exec.Operator, total func() float64) *AggEstimator {
	a := &AggEstimator{agg: agg, total: total}
	a.chooser = distinct.NewChooser(total(), distinct.DefaultTau)
	return a
}

// newTrackerAggEstimator attaches a group-count-transition estimator that
// shares the hash aggregation's own table (§4.2's lightweight
// integration). total returns the current estimate of |T|.
func newTrackerAggEstimator(agg exec.Operator, total func() float64) *AggEstimator {
	a := &AggEstimator{agg: agg, total: total}
	a.tracker = distinct.NewProfileTracker(total(), distinct.DefaultTau)
	return a
}

// ObserveGroupCount processes one input tuple's group-count transition
// (tracker mode).
func (a *AggEstimator) ObserveGroupCount(n int64) {
	a.tracker.ObserveCount(n)
	a.seen++
	if a.seen%1024 == 0 {
		a.tracker.SetTotal(a.total())
		a.publish()
	}
}

// ObserveGroupCounts processes a span of group-count transitions — the
// span-at-a-time form of ObserveGroupCount, delivered once per columnar
// input batch. The tracker consumes the span in order and the |T|
// refresh / publish boundaries fall on the same absolute transition
// indexes as the per-transition hook, so estimator state is identical.
func (a *AggEstimator) ObserveGroupCounts(ns []int64) {
	for len(ns) > 0 {
		chunk := 1024 - a.seen%1024
		if chunk > int64(len(ns)) {
			chunk = int64(len(ns))
		}
		a.tracker.ObserveCounts(ns[:chunk])
		a.seen += chunk
		ns = ns[chunk:]
		if a.seen%1024 == 0 {
			a.tracker.SetTotal(a.total())
			a.publish()
		}
	}
}

// newPushdownAggEstimator attaches a histogram-profile estimator over the
// output-distribution histogram hist, which the underlying join pipeline
// fills during its probe pass. joinSize returns the join's current
// output-size estimate.
func newPushdownAggEstimator(agg exec.Operator, hist *FreqHistogram, joinSize func() float64) *AggEstimator {
	return &AggEstimator{
		agg:      agg,
		outHist:  hist,
		joinSize: joinSize,
		tau:      distinct.DefaultTau,
	}
}

// ObserveInput processes one aggregation-input tuple (stream mode).
func (a *AggEstimator) ObserveInput(groupKey data.Value) {
	a.chooser.Observe(groupKey)
	a.seen++
	if a.seen%1024 == 0 {
		a.chooser.SetTotal(a.total())
		a.publish()
	}
}

// pushdownTick is called (from the pipeline's probe pass) to refresh the
// published estimate periodically in push-down mode.
func (a *AggEstimator) pushdownTick() {
	a.seen++
	if a.seen%1024 == 0 {
		a.publish()
	}
}

// MarkInputEnd freezes the estimator when the observed stream ends.
func (a *AggEstimator) MarkInputEnd() {
	if a.chooser != nil {
		a.chooser.MarkExhausted()
	}
	if a.tracker != nil {
		a.tracker.MarkExhausted()
	}
	a.publish()
}

// Estimate returns the current number-of-groups estimate.
func (a *AggEstimator) Estimate() float64 {
	if a.chooser != nil {
		return a.chooser.Estimate()
	}
	if a.tracker != nil {
		return a.tracker.Estimate()
	}
	// Push-down: profile of the estimated output distribution.
	t := a.outHist.Total()
	if t == 0 {
		return a.agg.Stats().Estimate()
	}
	total := a.joinSize()
	if total < float64(t) {
		total = float64(t)
	}
	est, _ := distinct.ChooseFromProfile(a.outHist.Profile(), t, total, a.tau)
	return est
}

// Source describes which estimator currently backs Estimate.
func (a *AggEstimator) Source() string {
	switch {
	case a.chooser != nil:
		if a.chooser.UsingMLE() {
			return "mle"
		}
		return "gee"
	case a.tracker != nil:
		if a.tracker.UsingMLE() {
			return "mle"
		}
		return "gee"
	default:
		return "agg-pushdown"
	}
}

// Gamma2 returns the current skew measure.
func (a *AggEstimator) Gamma2() float64 {
	switch {
	case a.chooser != nil:
		return a.chooser.Gamma2()
	case a.tracker != nil:
		return a.tracker.Gamma2()
	default:
		return distinct.Gamma2FromProfile(a.outHist.Profile(), a.outHist.Total())
	}
}

func (a *AggEstimator) publish() {
	est, src := a.Estimate(), a.Source()
	a.agg.Stats().SetEstimate(est, src)
	var g2 float64
	if a.tr != nil && src != a.lastSrc {
		g2 = a.Gamma2() // only computed when a transition event will carry it
	}
	a.tracePublish(est, src, g2)
}

// Chooser exposes the stream-mode chooser (nil in tracker and push-down
// modes).
func (a *AggEstimator) Chooser() *distinct.Chooser { return a.chooser }

// Tracker exposes the tracker-mode estimator (nil otherwise).
func (a *AggEstimator) Tracker() *distinct.ProfileTracker { return a.tracker }

// OutputHistogram exposes the push-down output-distribution histogram
// (nil in stream mode).
func (a *AggEstimator) OutputHistogram() *FreqHistogram { return a.outHist }
