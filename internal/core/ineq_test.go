package core

import (
	"math"
	"math/rand"
	"testing"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
)

// thetaJoinSetup builds Sort(outer) NLJoin inner with predicate
// outer.k OP inner.k and attaches the framework.
func thetaJoinSetup(t *testing.T, op expr.CmpOp, flip bool, seed int64) (*exec.NestedLoopsJoin, *Attachment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	outer := table("o", []string{"k"}, randCol(rng, 150, 30))
	inner := table("i", []string{"k"}, randCol(rng, 120, 30))
	sorted := exec.NewSort(exec.NewScan(outer, ""), 0)
	// Concatenated schema: outer col 0, inner col 1.
	l, r := expr.Expr(expr.Col{Index: 0}), expr.Expr(expr.Col{Index: 1})
	if flip {
		l, r = r, l
	}
	j := exec.NewNestedLoopsJoin(sorted, exec.NewScan(inner, ""), expr.Compare(op, l, r))
	return j, Attach(j)
}

func TestInequalityEstimatorExactAllOps(t *testing.T) {
	for i, op := range []expr.CmpOp{expr.LT, expr.LE, expr.GT, expr.GE, expr.EQ, expr.NE} {
		j, att := thetaJoinSetup(t, op, false, int64(100+i))
		if len(att.Ineq) != 1 {
			t.Fatalf("op %v: no inequality estimator attached", op)
		}
		n, err := exec.Run(j)
		if err != nil {
			t.Fatal(err)
		}
		est := att.Ineq[0]
		if !est.Converged() {
			t.Fatalf("op %v: not converged", op)
		}
		if got := est.Estimate(); math.Abs(got-float64(n)) > 1e-6 {
			t.Errorf("op %v: estimate %g != true size %d", op, got, n)
		}
		if j.Stats().Source() != "once-exact" {
			t.Errorf("op %v: source %q", op, j.Stats().Source())
		}
	}
}

func TestInequalityEstimatorFlippedOperands(t *testing.T) {
	// Predicate written as inner.k < outer.k: the attacher must flip the
	// comparison.
	j, att := thetaJoinSetup(t, expr.LT, true, 200)
	if len(att.Ineq) != 1 {
		t.Fatal("no estimator for flipped predicate")
	}
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if got := att.Ineq[0].Estimate(); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("flipped estimate %g != %d", got, n)
	}
}

func TestInequalityEstimatorUnbiasedMidway(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	inner := randCol(rng, 500, 100)
	outer := randCol(rng, 2000, 100)
	truth := 0.0
	for _, o := range outer {
		for _, i := range inner {
			if o > i {
				truth++
			}
		}
	}
	sum := 0.0
	const reps = 20
	for r := 0; r < reps; r++ {
		e := NewInequalityEstimator(dummyJoin(), expr.GT, func() float64 { return 2000 })
		for _, v := range inner {
			e.ObserveInner(data.Int(v))
		}
		perm := rng.Perm(len(outer))
		for i := 0; i < 200; i++ {
			e.ObserveOuter(data.Int(outer[perm[i]]))
		}
		sum += e.Estimate()
	}
	avg := sum / reps
	if math.Abs(avg-truth)/truth > 0.05 {
		t.Errorf("mean early estimate %g vs truth %g", avg, truth)
	}
}

func TestThetaJoinWithoutSortStaysFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	outer := table("o", []string{"k"}, randCol(rng, 50, 10))
	inner := table("i", []string{"k"}, randCol(rng, 50, 10))
	j := exec.NewNestedLoopsJoin(exec.NewScan(outer, ""), exec.NewScan(inner, ""),
		expr.Compare(expr.LT, expr.Col{Index: 0}, expr.Col{Index: 1}))
	att := Attach(j)
	if len(att.Ineq) != 0 {
		t.Error("unsorted theta join should not get an inequality estimator")
	}
	if len(att.Fallbacks) == 0 {
		t.Error("should be recorded as dne fallback")
	}
}

func TestDisjunctiveEstimatorExact(t *testing.T) {
	// outer.x = inner.x OR outer.y = inner.y: exact via
	// inclusion–exclusion (N_x + N_y − N_xy).
	rng := rand.New(rand.NewSource(500))
	outer := table("o", []string{"x", "y"}, randCol(rng, 140, 10), randCol(rng, 140, 8))
	inner := table("i", []string{"x", "y"}, randCol(rng, 120, 10), randCol(rng, 120, 8))
	sorted := exec.NewSort(exec.NewScan(outer, ""), 0)
	// Concatenated schema: outer x,y = 0,1; inner x,y = 2,3.
	pred := expr.OrOf(
		expr.Compare(expr.EQ, expr.Col{Index: 0}, expr.Col{Index: 2}),
		expr.Compare(expr.EQ, expr.Col{Index: 1}, expr.Col{Index: 3}),
	)
	j := exec.NewNestedLoopsJoin(sorted, exec.NewScan(inner, ""), pred)
	att := Attach(j)
	if len(att.Disjunct) != 1 {
		t.Fatal("no disjunctive estimator attached")
	}
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	est := att.Disjunct[0]
	if !est.Converged() {
		t.Fatal("not converged")
	}
	if got := est.Estimate(); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("disjunctive estimate %g != true size %d", got, n)
	}
	if j.Stats().Source() != "once-exact" {
		t.Errorf("source = %q", j.Stats().Source())
	}
}

func TestDisjunctiveThreeTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	outer := table("o", []string{"a", "b", "c"},
		randCol(rng, 90, 6), randCol(rng, 90, 7), randCol(rng, 90, 5))
	inner := table("i", []string{"a", "b", "c"},
		randCol(rng, 80, 6), randCol(rng, 80, 7), randCol(rng, 80, 5))
	sorted := exec.NewSort(exec.NewScan(outer, ""), 0)
	pred := expr.OrOf(
		expr.Compare(expr.EQ, expr.Col{Index: 0}, expr.Col{Index: 3}),
		expr.Compare(expr.EQ, expr.Col{Index: 1}, expr.Col{Index: 4}),
		expr.Compare(expr.EQ, expr.Col{Index: 2}, expr.Col{Index: 5}),
	)
	j := exec.NewNestedLoopsJoin(sorted, exec.NewScan(inner, ""), pred)
	att := Attach(j)
	if len(att.Disjunct) != 1 {
		t.Fatal("no estimator for 3-term disjunction")
	}
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if got := att.Disjunct[0].Estimate(); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("3-term estimate %g != %d", got, n)
	}
}

func TestDisjunctiveUnsupportedShapesFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	outer := table("o", []string{"x"}, randCol(rng, 30, 5))
	inner := table("i", []string{"x"}, randCol(rng, 30, 5))
	sorted := exec.NewSort(exec.NewScan(outer, ""), 0)
	// OR with a non-equality term: no estimator.
	pred := expr.OrOf(
		expr.Compare(expr.LT, expr.Col{Index: 0}, expr.Col{Index: 1}),
		expr.Compare(expr.EQ, expr.Col{Index: 0}, expr.Col{Index: 1}),
	)
	j := exec.NewNestedLoopsJoin(sorted, exec.NewScan(inner, ""), pred)
	att := Attach(j)
	if len(att.Disjunct) != 0 {
		t.Error("unsupported OR shape got an estimator")
	}
}
