package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qpi/internal/data"
	"qpi/internal/exec"
)

func TestBucketHistogramOverestimatesOnly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exact := NewFreqHistogram()
		approx := NewBucketHistogram(16)
		for i := 0; i < 500; i++ {
			v := data.Int(int64(rng.Intn(200)))
			exact.Add(v)
			approx.Add(v)
		}
		for v := int64(0); v < 200; v++ {
			if approx.Count(data.Int(v)) < exact.Count(data.Int(v)) {
				return false
			}
		}
		return approx.Total() == exact.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBucketHistogramExactWhenBucketsExceedDomain(t *testing.T) {
	// With many buckets and few distinct values, collisions are unlikely
	// but not impossible; check total and the no-collision case via a
	// single value.
	h := NewBucketHistogram(1024)
	for i := 0; i < 100; i++ {
		h.Add(data.Int(7))
	}
	if h.Count(data.Int(7)) != 100 {
		t.Errorf("count = %d", h.Count(data.Int(7)))
	}
}

func TestBucketHistogramMemoryBounded(t *testing.T) {
	h := NewBucketHistogram(64)
	for i := int64(0); i < 100000; i++ {
		h.Add(data.Int(i))
	}
	if h.MemoryUsed() != 64*8 {
		t.Errorf("memory = %d, want %d", h.MemoryUsed(), 64*8)
	}
	if h.Buckets() != 64 {
		t.Errorf("buckets = %d", h.Buckets())
	}
	exact := NewFreqHistogram()
	for i := int64(0); i < 100000; i++ {
		exact.Add(data.Int(i))
	}
	if h.MemoryUsed() >= exact.MemoryUsed() {
		t.Error("approximate histogram should be much smaller")
	}
}

func TestBucketHistogramIgnoresNulls(t *testing.T) {
	h := NewBucketHistogram(8)
	h.Add(data.Null())
	h.AddN(data.Int(1), 0)
	if h.Total() != 0 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(data.Null()) != 0 {
		t.Error("null count should be 0")
	}
	if NewBucketHistogram(0).Buckets() != 1 {
		t.Error("bucket floor not applied")
	}
}

func TestApproximatePipelineUpperBounds(t *testing.T) {
	// With approximate histograms the converged estimate upper-bounds the
	// true join size and approaches it as buckets increase.
	rng := rand.New(rand.NewSource(60))
	bVals := randCol(rng, 2000, 500)
	pVals := randCol(rng, 3000, 500)
	truth := func() int64 {
		counts := map[int64]int64{}
		for _, v := range bVals {
			counts[v]++
		}
		var n int64
		for _, v := range pVals {
			n += counts[v]
		}
		return n
	}()

	est := func(buckets int) float64 {
		b := table("b", []string{"k"}, bVals)
		p := table("p", []string{"k"}, pVals)
		j := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(p, ""), "b", "k", "p", "k")
		att := AttachWith(j, AttachOptions{Histograms: ApproximateHistograms(buckets)})
		if _, err := exec.Run(j); err != nil {
			t.Fatal(err)
		}
		return att.ChainOf[j].Estimate(0)
	}
	small := est(16)
	large := est(4096)
	if small < float64(truth) {
		t.Errorf("16-bucket estimate %g below truth %d", small, truth)
	}
	if large < float64(truth) {
		t.Errorf("4096-bucket estimate %g below truth %d", large, truth)
	}
	if math.Abs(large-float64(truth)) > math.Abs(small-float64(truth)) {
		t.Errorf("more buckets should be at least as accurate: 16→%g, 4096→%g, truth %d",
			small, large, truth)
	}
	// 4096 buckets over 500 distinct values: tiny collision error.
	if large > 1.2*float64(truth) {
		t.Errorf("4096-bucket estimate %g too far above truth %d", large, truth)
	}
}

func TestSortedOuterNLJoinEstimator(t *testing.T) {
	// Indexed NL join with a sorted outer input: the estimator converges
	// to the exact join size during the sort's input pass (§4.1.3 note).
	rng := rand.New(rand.NewSource(61))
	outer := table("o", []string{"k"}, randCol(rng, 400, 25))
	inner := table("i", []string{"k"}, randCol(rng, 300, 25))
	sorted := exec.NewSort(exec.NewScan(outer, ""), 0)
	j := exec.NewIndexedNLJoin(sorted, exec.NewScan(inner, ""), 0, 0)
	att := Attach(j)
	pe := att.ChainOf[j]
	if pe == nil {
		t.Fatal("sorted-outer NL join got no estimator")
	}
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if !pe.Converged() {
		t.Fatal("estimator did not converge")
	}
	if got := pe.Estimate(0); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("estimate %g != true size %d", got, n)
	}
}

func TestPlainNLJoinStaysFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	outer := table("o", []string{"k"}, randCol(rng, 50, 5))
	inner := table("i", []string{"k"}, randCol(rng, 50, 5))
	j := exec.NewIndexedNLJoin(exec.NewScan(outer, ""), exec.NewScan(inner, ""), 0, 0)
	att := Attach(j)
	if att.ChainOf[j] != nil {
		t.Error("unsorted-outer NL join should not get an estimator")
	}
	if len(att.Fallbacks) == 0 {
		t.Error("NL join should be recorded as fallback")
	}
}
