package core

import (
	"qpi/internal/exec"
)

// This file implements the two baseline estimators the paper compares
// against (§2, §5.1.2):
//
//   - dne, the driver-node estimator of Chaudhuri et al. [9]: as soon as
//     the pipeline starts it discards the optimizer estimate and
//     extrapolates the operator's observed output linearly in the driver
//     node's progress: E = K / f.
//   - byte, the estimator of Luo et al. [18]: a weighted average of the
//     optimizer estimate and the same extrapolation, with the weight
//     shifting toward the observation as the driver progresses:
//     E = (1-f)·E_opt + f·(K/f) = (1-f)·E_opt + K.
//
// Both observe the operator's *output*, which for hash joins and
// sort-merge joins is produced only after partitioning/sorting has
// clustered the input — the reordering that makes them fluctuate on
// skewed data while the once estimator (which observes the pre-partition
// probe pass) has already converged.

// DriverFraction returns the progress fraction f of the driver feeding
// op's output-producing phase:
//
//   - hash join: fraction of the probe input consumed by the join pass;
//   - merge join: fraction of the sorted inputs consumed by the merge;
//   - nested loops: outer input progress;
//   - scans: fraction of the table read;
//   - filters/projections/limits/sorts/aggregations: their input's
//     driver fraction (fully blocking inputs report 1 once ready).
func DriverFraction(op exec.Operator) float64 {
	switch o := op.(type) {
	case *exec.Scan:
		return o.Fraction()
	case *exec.HashJoin:
		return o.JoinedProbeFraction()
	case *exec.MergeJoin:
		return o.Progress()
	case *exec.NestedLoopsJoin:
		return DriverFraction(o.Outer())
	case *exec.Filter, *exec.Project, *exec.Limit:
		return DriverFraction(op.Children()[0])
	case *exec.Sort:
		// During the input pass the sort has emitted nothing; once
		// sorted, progress is its own emission fraction.
		st := op.Stats()
		if st.IsDone() {
			return 1
		}
		if st.Estimate() > 0 {
			return float64(st.Emitted.Load()) / st.Estimate()
		}
		return 0
	case *exec.HashAgg, *exec.SortAgg:
		st := op.Stats()
		if st.IsDone() {
			return 1
		}
		if st.Estimate() > 0 {
			return float64(st.Emitted.Load()) / st.Estimate()
		}
		return 0
	default:
		if cs := op.Children(); len(cs) > 0 {
			return DriverFraction(cs[0])
		}
		// Generic leaf (e.g. a disk scan): progress is emission over the
		// known input size.
		if st := op.Stats(); st.InputTotal > 0 {
			return float64(st.Emitted.Load()) / float64(st.InputTotal)
		}
		return 0
	}
}

// DNEEstimate returns the driver-node estimate of op's total output
// cardinality at this instant: K/f once the pipeline has started, the
// optimizer estimate before, the exact count when done.
func DNEEstimate(op exec.Operator, optimizerEst float64) float64 {
	st := op.Stats()
	if st.IsDone() {
		return float64(st.Emitted.Load())
	}
	f := DriverFraction(op)
	if f <= 0 {
		return optimizerEst
	}
	if f > 1 {
		f = 1
	}
	return float64(st.Emitted.Load()) / f
}

// ByteEstimate returns Luo et al.'s weighted-average estimate of op's
// total output cardinality: (1-f)·E_opt + K (per-byte work collapses to
// per-tuple counts under our fixed-width tuples).
func ByteEstimate(op exec.Operator, optimizerEst float64) float64 {
	st := op.Stats()
	if st.IsDone() {
		return float64(st.Emitted.Load())
	}
	f := DriverFraction(op)
	if f <= 0 {
		return optimizerEst
	}
	if f > 1 {
		f = 1
	}
	return (1-f)*optimizerEst + float64(st.Emitted.Load())
}
