package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/storage"
)

// Tests for the sharded columnar estimator attachment backing the
// morsel-driven columnar partition passes. The headline contract is
// stronger than convergence: because every histogram mutation is an
// integer AddN into a worker shard merged in fixed order, and every probe
// moment delta is an integer-valued float64 (exact below 2^53), the
// converged estimator state must be BIT-IDENTICAL to the serial columnar
// run — asserted here with ==, not a tolerance.

// morselizeCol marks every hash join in the plan columnar + morselized
// with k workers and single-block morsels. Must run before Attach.
func morselizeCol(op exec.Operator, k int) {
	if j, ok := op.(*exec.HashJoin); ok {
		j.SetParallelism(k)
		j.SetColumnar(true)
		j.SetMorsel(true).SetMorselBlocks(1)
	}
	for _, c := range op.Children() {
		morselizeCol(c, k)
	}
}

// columnarize marks every hash join columnar (serial passes).
func columnarize(op exec.Operator) {
	if j, ok := op.(*exec.HashJoin); ok {
		j.SetColumnar(true)
	}
	for _, c := range op.Children() {
		columnarize(c)
	}
}

// drainColPlan drains a columnar plan and returns the row count.
func drainColPlan(t *testing.T, top exec.Operator) int64 {
	t.Helper()
	if err := top.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := exec.DrainCol(exec.AsColOperator(top))
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}
	return int64(len(rows))
}

func TestColShardChainsExactOnPaperShapes(t *testing.T) {
	shapes := []struct {
		name string
		mk   func() *exec.HashJoin
	}{
		{"fig3-binary", func() *exec.HashJoin { return fig3Plan(40) }},
		{"fig5-same-attr", func() *exec.HashJoin { return fig5Plan(41) }},
		{"fig6-case1", func() *exec.HashJoin { return fig6Plan(42, false) }},
		{"fig6-case2", func() *exec.HashJoin { return fig6Plan(43, true) }},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			top := sh.mk()
			morselizeCol(top, 3)
			att := Attach(top)
			pe := att.ChainOf[top]
			if pe == nil {
				t.Fatal("no chain estimator attached")
			}
			if !pe.ColShardAttached() {
				t.Fatal("morselized columnar chain did not attach sharded")
			}
			drainColPlan(t, top)
			if !pe.Converged() {
				t.Fatal("estimator did not converge")
			}
			for k, j := range chainJoins(top) {
				truth := float64(j.Stats().Emitted.Load())
				if got := pe.Estimate(k); math.Abs(got-truth) > 1e-6 {
					t.Errorf("level %d: converged estimate %g != true cardinality %g", k, got, truth)
				}
				if j.Stats().Source() != "once-exact" {
					t.Errorf("level %d: est source = %q", k, j.Stats().Source())
				}
			}
		})
	}
}

// TestColShardBitIdenticalToSerialColumnar: the converged estimates of
// the sharded columnar run must equal the serial columnar run's exactly
// (==): integer histogram counts commute, and the probe moment sums
// accumulate integer-valued deltas, so no accumulation order can perturb
// a bit.
func TestColShardBitIdenticalToSerialColumnar(t *testing.T) {
	shapes := []func() *exec.HashJoin{
		func() *exec.HashJoin { return fig3Plan(50) },
		func() *exec.HashJoin { return fig5Plan(51) },
		func() *exec.HashJoin { return fig6Plan(52, false) },
		func() *exec.HashJoin { return fig6Plan(53, true) },
		func() *exec.HashJoin { return strKeyPlan(54) },
	}
	for si, mk := range shapes {
		run := func(morsel bool, workers int) (est, lo, hi []float64, probes, rows int64) {
			top := mk()
			if morsel {
				morselizeCol(top, workers)
			} else {
				columnarize(top)
			}
			att := Attach(top)
			pe := att.ChainOf[top]
			if pe.ColShardAttached() != morsel {
				t.Fatalf("shape %d: ColShardAttached = %v, want %v", si, pe.ColShardAttached(), morsel)
			}
			pe.OnProbeObserved = func(n int64) { probes = n }
			rows = drainColPlan(t, top)
			for k := range chainJoins(top) {
				est = append(est, pe.Estimate(k))
				l, h := pe.ConfidenceInterval(k, 0.95)
				lo, hi = append(lo, l), append(hi, h)
			}
			return
		}
		serialEst, serialLo, serialHi, serialProbes, serialRows := run(false, 0)
		for _, workers := range []int{2, 4} {
			est, lo, hi, probes, rows := run(true, workers)
			if rows != serialRows || probes != serialProbes {
				t.Errorf("shape %d workers %d: rows/probes %d/%d vs serial %d/%d",
					si, workers, rows, probes, serialRows, serialProbes)
			}
			for k := range est {
				if est[k] != serialEst[k] {
					t.Errorf("shape %d workers %d level %d: estimate %v != serial %v (must be bit-identical)",
						si, workers, k, est[k], serialEst[k])
				}
				if lo[k] != serialLo[k] || hi[k] != serialHi[k] {
					t.Errorf("shape %d workers %d level %d: CI [%v,%v] != serial [%v,%v]",
						si, workers, k, lo[k], hi[k], serialLo[k], serialHi[k])
				}
			}
		}
	}
}

// strKeyTable builds a single string-key-column table over an integer
// domain (same equality classes as randCol, rendered as strings).
func strKeyTable(name string, keys []int64) *storage.Table {
	s := data.NewSchema(data.Column{Table: name, Name: "k", Kind: data.KindString})
	t := storage.NewTable(name, s)
	for _, k := range keys {
		t.MustAppend(data.Tuple{data.Str(fmt.Sprintf("k%03d", k))})
	}
	return t
}

// strKeyPlan is the fig3 binary shape with string join keys: the
// lane-native morsel scatter must take its generic (non-int-lane) path
// and the merged shards must still land bit-identical to the serial
// columnar run.
func strKeyPlan(seed int64) *exec.HashJoin {
	rng := rand.New(rand.NewSource(seed))
	a := strKeyTable("a", randCol(rng, 300, 20))
	b := strKeyTable("b", randCol(rng, 400, 20))
	return exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
}

// TestColShardMixedChainFallsBackToSerialColHooks: morselizing only part
// of a columnar chain must keep the serial span hooks (which morselized
// passes then fire under the pass mutex) and stay exact.
func TestColShardMixedChainFallsBackToSerialColHooks(t *testing.T) {
	top := fig5Plan(60)
	columnarize(top)
	lower := top.Probe().(*exec.HashJoin)
	lower.SetParallelism(3)
	lower.SetMorsel(true).SetMorselBlocks(1)
	att := Attach(top)
	pe := att.ChainOf[top]
	if pe.ColShardAttached() {
		t.Fatal("partially morselized chain attached sharded")
	}
	if !pe.ColAttached() {
		t.Fatal("columnar chain did not attach span hooks")
	}
	drainColPlan(t, top)
	if !pe.Converged() {
		t.Fatal("estimator did not converge")
	}
	for k, j := range chainJoins(top) {
		truth := float64(j.Stats().Emitted.Load())
		if got := pe.Estimate(k); math.Abs(got-truth) > 1e-6 {
			t.Errorf("level %d: converged estimate %g != %g", k, got, truth)
		}
	}
}

// TestColShardAggPushdownExact: GROUP BY over a morselized columnar chain
// publishes the exact push-down estimate at the probe barrier.
func TestColShardAggPushdownExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := table("a", []string{"k"}, randCol(rng, 300, 25))
	b := table("b", []string{"k"}, randCol(rng, 500, 25))
	j := exec.NewHashJoinOn(exec.NewScan(a, ""), exec.NewScan(b, ""), "a", "k", "b", "k")
	morselizeCol(j, 3)
	gcol := j.Schema().MustResolve("b", "k")
	agg := exec.NewHashAgg(j, []int{gcol}, []exec.AggSpec{{Func: exec.CountStar, Name: "c"}})
	att := Attach(agg)
	est := att.Aggs[agg]
	if est == nil || est.Source() != "agg-pushdown" {
		t.Fatal("expected pushdown estimator")
	}
	if !att.ChainOf[j].ColShardAttached() {
		t.Fatal("chain should attach col-sharded")
	}
	rows, err := exec.RunBatch(exec.AsBatch(agg))
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Estimate(); math.Abs(got-float64(rows)) > 1e-6 {
		t.Errorf("pushdown estimate %g != true group count %d", got, rows)
	}
	if got := agg.Stats().Estimate(); math.Abs(got-float64(rows)) > 1e-6 {
		t.Errorf("published agg estimate %g != %d", got, rows)
	}
}
