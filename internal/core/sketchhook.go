package core

import (
	"fmt"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/sketch"
)

// This file rides join-key sketch construction on the grace-join
// partition passes the estimation framework already observes: every
// hash join's build pass and probe pass feed one ColumnSketch each,
// span-at-a-time where the pass is columnar and sharded per worker
// where the pass is parallel — sketching costs one hash per key and no
// extra scan. The resulting single-table sketches merge into multi-join
// cardinality estimates through SketchSet.JoinSizeEstimate, which is
// what the mid-query re-optimizer consumes for pipelines whose inputs
// have already streamed past.

// SketchSet is the result of AttachSketches: the per-join key sketches,
// keyed by join operator.
type SketchSet struct {
	cfg   sketch.Config
	Joins map[*exec.HashJoin]*JoinSketches
}

// JoinSketches holds one hash join's two key-stream sketches. Build
// summarizes the build input's join-key column(s), Probe the probe
// input's. Each is complete once its partition pass has finished
// (sharded passes merge at the pass barrier); reading one mid-pass sees
// a prefix of the stream, which is still a valid sketch of that prefix.
type JoinSketches struct {
	Build *sketch.ColumnSketch
	Probe *sketch.ColumnSketch
}

// AttachSketches wires sketch construction into every hash join under
// root with the default sketch family. Call it after Attach (hook
// composition preserves earlier observers) and before the plan opens.
func AttachSketches(root exec.Operator) *SketchSet {
	return AttachSketchesWith(root, sketch.DefaultConfig())
}

// AttachSketchesWith is AttachSketches with a custom sketch family.
func AttachSketchesWith(root exec.Operator, cfg sketch.Config) *SketchSet {
	s := &SketchSet{cfg: cfg, Joins: map[*exec.HashJoin]*JoinSketches{}}
	exec.Walk(root, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			s.wire(j)
		}
	})
	return s
}

// Of returns the sketches riding join j, nil when j was not attached.
func (s *SketchSet) Of(j *exec.HashJoin) *JoinSketches { return s.Joins[j] }

// JoinSizeEstimate merges single-table key sketches into one multi-join
// cardinality estimate. joins lists one probe-linked chain segment
// bottom-up; the estimate is a cascade of pairwise Fast-AGMS dots: the
// bottom join's build×probe dot seeds the size, and every upper join
// scales it by that join's dot divided by its observed probe-stream row
// count (its per-stream-row output multiplicity). Each factor uses only
// the pairwise dot, which is the unbiased AGMS form — a single k-way
// dot under shared sign functions is biased toward zero for odd k,
// because the diagonal carries an odd sign power. Because each upper
// join's probe sketch summarizes the real joined stream, the cascade is
// exact when the pairwise dots are.
func (s *SketchSet) JoinSizeEstimate(joins ...*exec.HashJoin) (float64, error) {
	if len(joins) == 0 {
		return 0, fmt.Errorf("core: JoinSizeEstimate needs at least one join")
	}
	var est float64
	for i, j := range joins {
		js := s.Joins[j]
		if js == nil {
			return 0, fmt.Errorf("core: no sketches attached to %s", j.Name())
		}
		pair, err := sketch.JoinSizeEstimate(js.Probe.AGMS, js.Build.AGMS)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			est = pair
			continue
		}
		if js.Probe.Rows == 0 {
			return 0, nil
		}
		est *= pair / float64(js.Probe.Rows)
	}
	return est, nil
}

// Rewire re-installs j's sketch hooks with fresh, empty sketches. The
// re-optimizer calls it after restructuring a segment: ResetObservers
// wipes every composed hook, sketch hooks included, and the joins are
// unstarted, so starting over loses nothing.
func (s *SketchSet) Rewire(j *exec.HashJoin) {
	delete(s.Joins, j)
	s.wire(j)
}

func (s *SketchSet) wire(j *exec.HashJoin) {
	if s.Joins[j] != nil {
		return
	}
	js := &JoinSketches{
		Build: sketch.NewColumnSketch(s.cfg),
		Probe: sketch.NewColumnSketch(s.cfg),
	}
	s.Joins[j] = js
	s.wireBuild(j, js.Build)
	s.wireProbe(j, js.Probe)
}

// wireBuild mirrors hashLinkHooks' mode dispatch: worker-sharded hooks
// when the pass is parallel (morselized columnar or batched — the pass
// barrier OnBuildEnd merges the shards), serial span or tuple hooks
// otherwise. Exactly one hook kind is installed per pass, matching
// which callbacks that pass mode actually fires, so keys are never
// double-counted. The tuple-mode partition pass fires no OnBuildEnd,
// which is why the serial modes sketch into the destination directly.
func (s *SketchSet) wireBuild(j *exec.HashJoin, cs *sketch.ColumnSketch) {
	keys := j.BuildKeys()
	switch {
	case j.Columnar() && j.Morseled():
		shards := s.newShards(j.Workers())
		j.OnBuildColBatch = composeColW(j.OnBuildColBatch, func(w int, cb *data.ColBatch) {
			observeColKey(shards[w], cb, keys)
		})
		j.OnBuildEnd = compose0(j.OnBuildEnd, s.merger(cs, shards))
	case j.Columnar():
		j.OnBuildCol = composeCol(j.OnBuildCol, func(cb *data.ColBatch) {
			observeColKey(cs, cb, keys)
		})
	case j.Batched():
		shards := s.newShards(j.Workers())
		j.OnBuildBatch = composeBatch(j.OnBuildBatch, func(w int, b data.Batch) {
			for _, t := range b {
				observeTupleKey(shards[w], t, keys)
			}
		})
		j.OnBuildEnd = compose0(j.OnBuildEnd, s.merger(cs, shards))
	default:
		j.OnBuildTuple = compose(j.OnBuildTuple, func(t data.Tuple) {
			observeTupleKey(cs, t, keys)
		})
	}
}

// wireProbe mirrors wireHashProbe's dispatch for one join's probe
// partition pass.
func (s *SketchSet) wireProbe(j *exec.HashJoin, cs *sketch.ColumnSketch) {
	keys := j.ProbeKeys()
	switch {
	case j.Columnar() && j.Morseled():
		shards := s.newShards(j.Workers())
		j.OnProbeColBatch = composeColW(j.OnProbeColBatch, func(w int, cb *data.ColBatch) {
			observeColKey(shards[w], cb, keys)
		})
		j.OnProbeEnd = compose0(j.OnProbeEnd, s.merger(cs, shards))
	case j.Columnar():
		j.OnProbeCol = composeCol(j.OnProbeCol, func(cb *data.ColBatch) {
			observeColKey(cs, cb, keys)
		})
	case j.Batched():
		shards := s.newShards(j.Workers())
		j.OnProbeBatch = composeBatch(j.OnProbeBatch, func(w int, b data.Batch) {
			for _, t := range b {
				observeTupleKey(shards[w], t, keys)
			}
		})
		j.OnProbeEnd = compose0(j.OnProbeEnd, s.merger(cs, shards))
	default:
		j.OnProbeTuple = compose(j.OnProbeTuple, func(t data.Tuple) {
			observeTupleKey(cs, t, keys)
		})
	}
}

func (s *SketchSet) newShards(workers int) []*sketch.ColumnSketch {
	if workers < 1 {
		workers = 1
	}
	shards := make([]*sketch.ColumnSketch, workers)
	for i := range shards {
		shards[i] = sketch.NewColumnSketch(s.cfg)
	}
	return shards
}

// merger returns the pass-barrier callback folding the worker shards
// into dst. Shards are re-zeroed afterwards so a pass that fires its
// barrier more than once cannot double-count.
func (s *SketchSet) merger(dst *sketch.ColumnSketch, shards []*sketch.ColumnSketch) func() {
	return func() {
		for i, sh := range shards {
			if err := dst.Merge(sh); err != nil {
				panic(err) // impossible: one Config per SketchSet
			}
			shards[i] = sketch.NewColumnSketch(s.cfg)
		}
	}
}

// keyItem maps one tuple's join-key columns onto a sketch item,
// reporting ok=false when any key column is NULL (NULL keys never
// join). Composite keys fold the per-column kind-tagged items FNV-style
// so the composite item respects tuple-wise join equality.
func keyItem(t data.Tuple, cols []int) (uint64, bool) {
	if len(cols) == 1 {
		v := t[cols[0]]
		if v.IsNull() {
			return 0, false
		}
		return sketch.ValueItem(v), true
	}
	it := uint64(14695981039346656037)
	for _, c := range cols {
		v := t[c]
		if v.IsNull() {
			return 0, false
		}
		it = (it ^ sketch.ValueItem(v)) * 1099511628211
	}
	return it, true
}

func observeTupleKey(cs *sketch.ColumnSketch, t data.Tuple, cols []int) {
	if it, ok := keyItem(t, cols); ok {
		cs.ObserveItem(it)
	} else {
		cs.ObserveNull()
	}
}

// observeColKey sketches the key lane of one ColBatch: straight off the
// flat int64 lane for the dominant homogeneous-integer single-key case,
// via row materialization otherwise.
func observeColKey(cs *sketch.ColumnSketch, cb *data.ColBatch, cols []int) {
	if len(cols) == 1 {
		if kv := cb.Col(cols[0]); kv.Homogeneous() && kv.Kind == data.KindInt {
			observe := func(i int) {
				if kv.Nulls.Get(i) {
					cs.ObserveNull()
				} else {
					cs.ObserveInt(kv.Ints[i])
				}
			}
			if cb.Sel == nil {
				for i := 0; i < cb.NRows; i++ {
					observe(i)
				}
			} else {
				for _, i := range cb.Sel {
					observe(int(i))
				}
			}
			return
		}
	}
	rows := cb.MaterializeRows()
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			observeTupleKey(cs, rows[i], cols)
		}
	} else {
		for _, i := range cb.Sel {
			observeTupleKey(cs, rows[int(i)], cols)
		}
	}
}
