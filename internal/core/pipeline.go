package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/obs"
)

// This file implements the paper's Algorithm 1 (§4.1.4): push-down
// cardinality estimation for a pipeline containing a chain of joins.
//
// Terminology: the chain has m joins, level 0 at the top. Join k has a
// build relation R_k (its build input stream) and its probe input is the
// output of join k+1; the bottom join's (level m-1) probe input is the
// stream C that drives the pipeline. Execution builds R_0 first, then
// R_1, ..., R_{m-1}, then streams C — which is exactly the order the
// derived histograms need.
//
// For every join k we want out_k(c), the number of join-k output tuples
// attributable to a single C tuple c, so that after observing t of |C|
// tuples the estimate is D_k = |C|/t · Σ_c out_k(c). The key value that
// join k matches on (its probe key) originates either from C itself
// ("Case 1" / same-attribute) or from some deeper build relation R_j, j>k
// ("Case 2"). We therefore maintain per (level k, relation j) histograms
//
//	M[k][j][v] = Σ_{b ∈ R_j, b.buildKey = v}  Π_{u ∈ folds(j), u ≥ k} M[k][u][b.col_u]
//
// where folds(j) is the set of joins whose probe key originates from
// R_j. M[k][j] is exactly the paper's derived histogram: with no folds it
// degenerates to the plain frequency histogram N^{R_j}, and for the
// paper's two-join Case 2 it is the "distribution of x in A ⋈_y B". Then
//
//	out_k(c) = Π_{j ≥ k, source(j) = C} M[k][j][c.col_j].
//
// Histograms that would be identical across levels are shared, so the
// paper's experiments (chains of two joins) build at most one extra
// histogram per relation.

// ChainLink describes one join of a pipeline chain to the estimator,
// abstracting over the physical join (hash join build pass, or the sort
// pass of a sort-merge join on the same attribute).
type ChainLink struct {
	// Join is the join operator whose Stats receive the estimates.
	Join exec.Operator
	// BuildWidth is the arity of the build input's schema (the join's
	// output is build columns followed by probe columns).
	BuildWidth int
	// BuildKeys are the join column indexes in the build input's schema
	// (several for conjunctive multi-attribute conditions, §4.1).
	BuildKeys []int
	// ProbeKeys are the join column indexes in the probe input's schema.
	ProbeKeys []int
	// SetBuildHook installs f to run for every build-input tuple during
	// the join's preprocessing pass.
	SetBuildHook func(f func(data.Tuple))
	// SetBuildBatchHook installs f to run once per build-input batch
	// during a batched preprocessing pass, on the scatter worker that owns
	// the batch. Nil when the physical operator has no batched pass.
	SetBuildBatchHook func(f func(worker int, b data.Batch))
	// SetBuildEndHook installs the build-pass barrier callback (fires on
	// the reader goroutine after all batch hooks of the pass completed).
	SetBuildEndHook func(f func())
	// Workers is the number of scatter workers the batched pass uses
	// (0 when the pass is tuple-at-a-time). When every link of a chain is
	// batched, the estimator shards its histograms per worker instead of
	// installing per-tuple hooks.
	Workers int
	// SetBuildColHook installs f to run once per build-input ColBatch
	// during a columnar preprocessing pass (serial, at batch boundaries).
	// Nil when the physical operator has no columnar pass.
	SetBuildColHook func(f func(cb *data.ColBatch))
	// SetBuildColBatchHook installs f to run once per build-input ColBatch
	// during a morselized columnar pass, on the scan worker that owns the
	// batch. Nil when the columnar pass is serial; when every link of a
	// columnar chain provides it (plus SetBuildEndHook and Workers), the
	// estimator shards per worker instead of observing serially (see
	// colshard.go).
	SetBuildColBatchHook func(f func(worker int, cb *data.ColBatch))
	// Columnar reports that the physical operator runs the columnar
	// partition passes. When every link of a chain is columnar, the
	// estimator observes spans at batch boundaries (see colhooks.go)
	// instead of installing per-tuple hooks.
	Columnar bool
	// Mult transforms the matched build count N into the number of output
	// tuples per probe tuple (§4.1.1's note on semijoins and outerjoins):
	// nil means the inner-join identity; semi joins use 1 if N>0, anti
	// joins 1 if N==0, probe-preserving outer joins max(N, 1). Only
	// meaningful for links whose probe key comes from the bottom stream.
	Mult func(n int64) float64
}

// Multiplicity transforms for the non-inner join types.
var (
	// MultSemi counts one output per probe tuple with a match.
	MultSemi = func(n int64) float64 {
		if n > 0 {
			return 1
		}
		return 0
	}
	// MultAnti counts one output per probe tuple without a match.
	MultAnti = func(n int64) float64 {
		if n == 0 {
			return 1
		}
		return 0
	}
	// MultProbeOuter preserves unmatched probe tuples.
	MultProbeOuter = func(n int64) float64 {
		if n == 0 {
			return 1
		}
		return float64(n)
	}
)

// PipelineEstimator refines the cardinality estimates of every join in a
// chain while the bottom probe stream is being partitioned/sorted.
type PipelineEstimator struct {
	links []ChainLink
	m     int

	srcs  []keySource // provenance of each join's probe key
	folds [][]foldRef // folds[j]: joins keyed off relation j

	hists [][]Histogram // hists[k][j], shared where identical

	histFactory HistogramFactory

	probeTotal func() float64 // live estimate of |C|

	t      int64
	sums   []float64
	sumSqs []float64
	frozen bool

	// publishEvery controls how often (in probe tuples) the estimates are
	// copied into the joins' Stats; estimates themselves update on every
	// tuple and can always be read with Estimate.
	publishEvery int64

	// OnProbeObserved, if set, fires after each probe tuple has updated
	// the estimates (used by the experiment harness to sample
	// trajectories).
	OnProbeObserved func(t int64)

	// OnConverged, if set, fires exactly once when the estimator freezes
	// (the bottom probe stream has been fully observed and every estimate
	// is exact). It runs on the goroutine ending the pass, after the final
	// publish, so the joins' Stats already carry the once-exact values.
	// The mid-query re-optimizer uses it as its convergence trigger.
	OnConverged func()

	// Output-distribution accumulation for aggregation push-down (§4.2
	// end): when enabled, every probe tuple c adds out_0(c) observations
	// of c[outDistCol] to outDistHist — the estimated frequency
	// distribution of the top join's output on that column.
	outDistCol  int
	outDistHist *FreqHistogram

	// Batched (sharded) attachment state — see shard.go. batchInstalled
	// reports that build observation runs through per-worker histogram
	// shards and probe observation through ObserveProbeBatch/FinishProbe;
	// afterConverge hooks fire after the probe-end merge has frozen the
	// estimator (aggregation push-down publishes its final estimate
	// there).
	batchInstalled bool
	probeShards    []probeShard
	afterConverge  []func()

	// Columnar attachment state — see colhooks.go. colInstalled reports
	// that build observation runs through span-at-a-time ColBatch hooks
	// and probe observation through ObserveProbeCol. colShardInstalled
	// (see colshard.go) is the sharded variant backing morselized columnar
	// passes: worker-indexed ColBatch hooks into per-worker shards, probe
	// observation through ObserveProbeColShard/FinishProbe.
	colInstalled      bool
	colShardInstalled bool

	// Observability (see internal/obs): the tracer receives one
	// EstimateRefined event per level at every publish boundary plus
	// SourceTransition events on optimizer→once→once-exact; counters are
	// refreshed at the same boundaries so tracing never touches the
	// per-tuple path. trLabels caches the joins' Name() strings.
	tr             *obs.Tracer
	trLabels       []string
	lastSrc        string
	probesPerTuple int64 // histogram Count() calls per probe tuple
	recomputes     atomic.Int64
	histProbes     atomic.Int64
}

// keySource locates the origin of a join's probe key. For multi-column
// keys every column must originate in the same place; mixed provenance
// makes the chain product decomposition impossible and the join falls
// back to a single-link estimator.
type keySource struct {
	fromBottom bool
	rel        int   // relation level j (when !fromBottom)
	cols       []int // column indexes in C's schema or R_j's schema
}

type foldRef struct {
	join int   // join level u keyed off this relation
	cols []int // column indexes in the relation's schema
}

// NewPipelineEstimator wires estimation for a chain of joins. links runs
// from the top join (index 0) to the bottom join; probeTotal must return
// the current best estimate of the bottom probe stream size |C| (exact
// for scans, dne-refined for filtered streams).
//
// Callers must additionally feed the bottom probe stream to ObserveProbe
// (from the bottom join's probe partition pass or the bottom sort's input
// pass) and call MarkConverged when that stream ends.
func NewPipelineEstimator(links []ChainLink, probeTotal func() float64) (*PipelineEstimator, error) {
	m := len(links)
	if m == 0 {
		return nil, fmt.Errorf("core: pipeline estimator needs at least one join")
	}
	return NewPipelineEstimatorHist(links, probeTotal, ExactHistograms)
}

// NewPipelineEstimatorHist is NewPipelineEstimator with a custom histogram
// factory, e.g. ApproximateHistograms(n) for the bounded-memory variant
// (the approximation trade-off of §6). With approximate histograms the
// converged estimates upper-bound rather than equal the true sizes.
func NewPipelineEstimatorHist(links []ChainLink, probeTotal func() float64, factory HistogramFactory) (*PipelineEstimator, error) {
	m := len(links)
	if m == 0 {
		return nil, fmt.Errorf("core: pipeline estimator needs at least one join")
	}
	p := &PipelineEstimator{
		links:        links,
		m:            m,
		probeTotal:   probeTotal,
		sums:         make([]float64, m),
		sumSqs:       make([]float64, m),
		publishEvery: 64,
		histFactory:  factory,
	}
	if err := p.resolveProvenance(); err != nil {
		return nil, err
	}
	p.planHistograms()
	p.installHooks()
	for k := 0; k < m; k++ {
		for j := k; j < m; j++ {
			if p.srcs[j].fromBottom {
				p.probesPerTuple++
			}
		}
	}
	return p, nil
}

// SetTracer routes estimator refinement events into tr (nil disables).
// Safe to call between Attach and execution; join labels are cached here
// so publish boundaries never re-render operator names.
func (p *PipelineEstimator) SetTracer(tr *obs.Tracer) {
	p.tr = tr
	if tr != nil && p.trLabels == nil {
		p.trLabels = make([]string, p.m)
		for k := range p.links {
			p.trLabels[k] = p.links[k].Join.Name()
		}
	}
}

// Recomputes returns how many times the estimator has republished its
// estimates into the joins' Stats.
func (p *PipelineEstimator) Recomputes() int64 { return p.recomputes.Load() }

// HistogramProbes returns the number of histogram Count() lookups the
// probe pass has performed, refreshed at publish boundaries.
func (p *PipelineEstimator) HistogramProbes() int64 { return p.histProbes.Load() }

// resolveProvenance maps every join's probe key to a bottom-stream column
// or a build relation column.
func (p *PipelineEstimator) resolveProvenance() error {
	p.srcs = make([]keySource, p.m)
	p.folds = make([][]foldRef, p.m)
	for k := 0; k < p.m; k++ {
		srcLevel := -2 // unset
		cols := make([]int, 0, len(p.links[k].ProbeKeys))
		for _, probeCol := range p.links[k].ProbeKeys {
			idx := probeCol
			level := k + 1
			for level < p.m {
				bw := p.links[level].BuildWidth
				if idx < bw {
					break
				}
				idx -= bw
				level++
			}
			lvl := level
			if level >= p.m {
				lvl = -1 // bottom stream
			}
			if srcLevel == -2 {
				srcLevel = lvl
			} else if srcLevel != lvl {
				return fmt.Errorf("core: join level %d: multi-column key spans different source relations", k)
			}
			cols = append(cols, idx)
		}
		if srcLevel == -1 {
			p.srcs[k] = keySource{fromBottom: true, cols: cols}
		} else {
			p.srcs[k] = keySource{rel: srcLevel, cols: cols}
			p.folds[srcLevel] = append(p.folds[srcLevel], foldRef{join: k, cols: cols})
		}
	}
	return nil
}

// planHistograms allocates M[k][j] for k ≤ j, sharing pointers between
// adjacent levels whose fold sets (transitively) coincide.
func (p *PipelineEstimator) planHistograms() {
	p.hists = make([][]Histogram, p.m)
	for k := range p.hists {
		p.hists[k] = make([]Histogram, p.m)
	}
	for j := 0; j < p.m; j++ {
		// Level j at relation j has no applicable folds (folds come from
		// strictly higher joins): the raw frequency histogram N^{R_j}.
		p.hists[j][j] = p.histFactory()
		for k := j - 1; k >= 0; k-- {
			if p.levelsEqual(k, k+1, j) {
				p.hists[k][j] = p.hists[k+1][j]
			} else {
				p.hists[k][j] = p.histFactory()
			}
		}
	}
}

// levelsEqual reports whether M[k][j] and M[k2][j] would be identical
// (k = k2-1).
func (p *PipelineEstimator) levelsEqual(k, k2, j int) bool {
	for _, f := range p.folds[j] {
		if f.join == k {
			// Level k folds join k into relation j; level k2 does not.
			return false
		}
		if f.join > k {
			if p.hists[k][f.join] != p.hists[k2][f.join] {
				return false
			}
		}
	}
	return true
}

// histUpdate names one distinct histogram a relation's build pass must
// update, with the lowest level sharing it (folds depend on the level).
type histUpdate struct {
	hist  Histogram
	level int
}

// updateTargets deduplicates the histograms relation j's build pass feeds:
// shared levels collapse to one update at their lowest level.
func (p *PipelineEstimator) updateTargets(j int) []histUpdate {
	var updates []histUpdate
	seen := map[Histogram]bool{}
	for k := j; k >= 0; k-- {
		h := p.hists[k][j]
		if !seen[h] {
			seen[h] = true
			updates = append(updates, histUpdate{h, k})
		}
	}
	return updates
}

// buildWeight computes the fold weight of one build tuple of relation j
// for the histogram at the given level: the product over all folded-in
// joins at or above that level of their (Mult-transformed) match counts.
func (p *PipelineEstimator) buildWeight(tu data.Tuple, j, level int) int64 {
	w := int64(1)
	for _, f := range p.folds[j] {
		if f.join >= level {
			n := p.hists[level][f.join].Count(exec.JoinKeyOf(tu, f.cols))
			if m := p.links[f.join].Mult; m != nil {
				w *= int64(m(n))
			} else {
				w *= n
			}
		}
	}
	return w
}

// installHooks attaches the build-pass observers: per-tuple hooks in the
// default mode, per-worker sharded batch hooks (see shard.go) when every
// link runs a batched preprocessing pass, span-at-a-time columnar hooks
// (colhooks.go) when every link is columnar — sharded per worker
// (colshard.go) when the columnar passes are morselized. The sharded
// columnar check runs first: a morselized chain also satisfies
// chainColumnar, and the serial hooks would race under concurrent scans.
func (p *PipelineEstimator) installHooks() {
	if p.chainColSharded() {
		p.installColShardHooks()
		return
	}
	if p.chainColumnar() {
		p.installColHooks()
		return
	}
	if p.chainBatched() {
		p.installBatchHooks()
		return
	}
	for j := 0; j < p.m; j++ {
		j := j
		updates := p.updateTargets(j)
		buildKeys := p.links[j].BuildKeys
		p.links[j].SetBuildHook(func(tu data.Tuple) {
			key := exec.JoinKeyOf(tu, buildKeys)
			for _, u := range updates {
				p.hists[u.level][j].AddN(key, p.buildWeight(tu, j, u.level))
			}
		})
	}
}

// chainColumnar reports whether every link of the chain runs a columnar
// preprocessing pass (and therefore supports span observation).
func (p *PipelineEstimator) chainColumnar() bool {
	for _, l := range p.links {
		if !l.Columnar || l.SetBuildColHook == nil {
			return false
		}
	}
	return true
}

// chainColSharded reports whether every link of the chain runs a
// morselized columnar preprocessing pass (and therefore needs — and
// supports — worker-sharded span observation).
func (p *PipelineEstimator) chainColSharded() bool {
	for _, l := range p.links {
		if !l.Columnar || l.Workers < 1 || l.SetBuildColBatchHook == nil || l.SetBuildEndHook == nil {
			return false
		}
	}
	return true
}

// chainBatched reports whether every link of the chain runs a batched
// preprocessing pass (and therefore supports sharded observation).
func (p *PipelineEstimator) chainBatched() bool {
	for _, l := range p.links {
		if l.Workers < 1 || l.SetBuildBatchHook == nil || l.SetBuildEndHook == nil {
			return false
		}
	}
	return true
}

// ObserveProbe processes one bottom-stream tuple, refreshing every join's
// estimate, and stores the estimates into the joins' Stats with source
// "once".
func (p *PipelineEstimator) ObserveProbe(c data.Tuple) {
	p.t++
	for k := 0; k < p.m; k++ {
		delta := p.probeDelta(c, k)
		p.sums[k] += delta
		p.sumSqs[k] += delta * delta
		if k == 0 && p.outDistHist != nil {
			p.outDistHist.AddN(c[p.outDistCol], int64(delta))
		}
	}
	if p.t%p.publishEvery == 0 {
		p.publish()
	}
	if p.OnProbeObserved != nil {
		p.OnProbeObserved(p.t)
	}
}

// probeDelta computes out_k(c): the contribution of one bottom-stream
// tuple to join level k's estimate.
func (p *PipelineEstimator) probeDelta(c data.Tuple, k int) float64 {
	delta := 1.0
	for j := k; j < p.m; j++ {
		if p.srcs[j].fromBottom {
			n := p.hists[k][j].Count(exec.JoinKeyOf(c, p.srcs[j].cols))
			if m := p.links[j].Mult; m != nil {
				delta *= m(n)
			} else {
				delta *= float64(n)
			}
		}
	}
	return delta
}

// SetPublishInterval overrides how often (in probe tuples) estimates are
// copied into the joins' Stats (default 64).
func (p *PipelineEstimator) SetPublishInterval(n int64) {
	if n < 1 {
		n = 1
	}
	p.publishEvery = n
}

// publish writes the current estimates into the joins' Stats. It runs
// only on the execution goroutine (every publishEvery probe tuples in
// serial mode, at the probe-end barrier in sharded mode), which is why
// the tracer emission and counter refresh live here and not on the
// per-tuple path.
func (p *PipelineEstimator) publish() {
	src := "once"
	if p.frozen {
		src = "once-exact"
	}
	p.recomputes.Add(1)
	p.histProbes.Store(p.t * p.probesPerTuple)
	for k := 0; k < p.m; k++ {
		est := p.Estimate(k)
		p.links[k].Join.Stats().SetEstimate(est, src)
		if p.tr != nil {
			if src != p.lastSrc {
				from := p.lastSrc
				if from == "" {
					from = "optimizer"
				}
				p.tr.Transition(p.trLabels[k], "pipeline", from, src, 0)
			}
			p.tr.Refine(p.trLabels[k], "pipeline", est, src)
		}
	}
	p.lastSrc = src
}

// Estimate returns the current cardinality estimate D_k for join level k
// (0 = top).
func (p *PipelineEstimator) Estimate(k int) float64 {
	if p.t == 0 {
		return p.links[k].Join.Stats().Estimate()
	}
	total := p.probeTotal()
	if p.frozen {
		total = float64(p.t)
	}
	return total * p.sums[k] / float64(p.t)
}

// ConfidenceInterval returns the two-sided α confidence interval for join
// level k from the running moments of the per-tuple contributions.
func (p *PipelineEstimator) ConfidenceInterval(k int, alpha float64) (lo, hi float64) {
	d := p.Estimate(k)
	if p.frozen || p.t < 2 {
		return d, d
	}
	t := float64(p.t)
	variance := (p.sumSqs[k] - p.sums[k]*p.sums[k]/t) / (t - 1)
	if variance < 0 {
		variance = 0
	}
	total := p.probeTotal()
	fpc := 1.0
	if total > 1 && t < total {
		fpc = (total - t) / (total - 1)
	}
	half := ZForConfidence(alpha) * total * sqrt(variance*fpc/t)
	lo, hi = d-half, d+half
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// MarkConverged freezes the estimator when the bottom probe stream has
// been fully observed: all estimates are now exact.
func (p *PipelineEstimator) MarkConverged() {
	first := !p.frozen
	p.frozen = true
	p.publish()
	if first && p.OnConverged != nil {
		p.OnConverged()
	}
}

// Converged reports whether the bottom stream has been fully observed.
func (p *PipelineEstimator) Converged() bool { return p.frozen }

// ProbeTuplesSeen returns the number of bottom-stream tuples observed.
func (p *PipelineEstimator) ProbeTuplesSeen() int64 { return p.t }

// Levels returns the number of joins in the chain.
func (p *PipelineEstimator) Levels() int { return p.m }

// Links exposes the chain's links (index 0 = top join). Callers must
// treat the slice as read-only; the re-optimizer uses it to discover
// restructurable segments and their key wiring.
func (p *PipelineEstimator) Links() []ChainLink { return p.links }

// HasOutputDistribution reports whether aggregation push-down rides
// this chain (EnableOutputDistribution was called). Restructuring such
// a chain would orphan the push-down histogram's column binding, so
// the re-optimizer skips it.
func (p *PipelineEstimator) HasOutputDistribution() bool { return p.outDistHist != nil }

// BottomSourceCols returns the bottom-stream column indexes that join
// level k's probe key resolves to, or ok=false when the key originates
// from a deeper build relation instead.
func (p *PipelineEstimator) BottomSourceCols(k int) ([]int, bool) {
	if k < 0 || k >= p.m || !p.srcs[k].fromBottom {
		return nil, false
	}
	return p.srcs[k].cols, true
}

// Histogram exposes M[k][j] for inspection and aggregation push-down.
func (p *PipelineEstimator) Histogram(k, j int) Histogram { return p.hists[k][j] }

// EnableOutputDistribution starts accumulating the estimated frequency
// distribution of the top join's output on bottom-stream column col,
// returning the histogram (which fills as the probe pass advances). It
// backs the aggregation push-down of §4.2.
func (p *PipelineEstimator) EnableOutputDistribution(col int) *FreqHistogram {
	p.outDistCol = col
	// Track the frequency-of-frequencies profile incrementally: the
	// push-down aggregation estimator refreshes on publish boundaries, and
	// a rescan per refresh would be O(distinct) against this histogram's
	// O(1) per-update maintenance.
	p.outDistHist = NewFreqHistogram().TrackProfile()
	return p.outDistHist
}

// ResolveToBottom maps a column index of the top join's output schema to
// its bottom-stream column, returning ok=false when the column originates
// from a build relation instead (in which case push-down keyed on the
// bottom stream is impossible).
func (p *PipelineEstimator) ResolveToBottom(col int) (int, bool) {
	idx := col
	for level := 0; level < p.m; level++ {
		bw := p.links[level].BuildWidth
		if idx < bw {
			return 0, false
		}
		idx -= bw
	}
	return idx, true
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
