package core

import (
	"sync/atomic"

	"qpi/internal/obs"
)

// refineTrace is the embeddable observability hookup shared by the
// single-operator estimators (aggregation, inequality, disjunctive): it
// forwards publish boundaries as EstimateRefined events, emits a
// SourceTransition event whenever the estimate's provenance changes, and
// counts republishes. All calls happen on the execution goroutine at
// publish boundaries; Recomputes is atomic so metrics scrapes can read
// it concurrently.
type refineTrace struct {
	tr         *obs.Tracer
	trLabel    string
	trDetail   string
	lastSrc    string
	recomputes atomic.Int64
}

// bindTracer installs the sink and the operator's cached label (nil tr
// disables event emission but republishes are still counted).
func (r *refineTrace) bindTracer(tr *obs.Tracer, label, detail string) {
	r.tr = tr
	r.trLabel = label
	r.trDetail = detail
}

// tracePublish records one publish: est/src were just written to the
// operator's Stats; gamma2 annotates chooser flips (0 when irrelevant).
func (r *refineTrace) tracePublish(est float64, src string, gamma2 float64) {
	r.recomputes.Add(1)
	if r.tr == nil {
		r.lastSrc = src
		return
	}
	if src != r.lastSrc {
		from := r.lastSrc
		if from == "" {
			from = "optimizer"
		}
		r.tr.Transition(r.trLabel, r.trDetail, from, src, gamma2)
	}
	r.lastSrc = src
	r.tr.Refine(r.trLabel, r.trDetail, est, src)
}

// Recomputes returns how many times the estimator has republished its
// estimate into the operator's Stats.
func (r *refineTrace) Recomputes() int64 { return r.recomputes.Load() }
