package core

import (
	"math/rand"
	"testing"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
)

// Exercises for accessor and branch coverage of smaller paths.

func TestDriverFractionVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	a := table("a", []string{"k"}, randCol(rng, 100, 10))
	b := table("b", []string{"k"}, randCol(rng, 100, 10))

	// Merge join progress.
	mj, _, _ := exec.NewSortMergeJoin(exec.NewScan(a, ""), exec.NewScan(b, ""), 0, 0)
	if f := DriverFraction(mj); f != 0 {
		t.Errorf("merge join initial fraction = %g", f)
	}
	if _, err := exec.Run(mj); err != nil {
		t.Fatal(err)
	}
	if f := DriverFraction(mj); f != 1 {
		t.Errorf("merge join final fraction = %g", f)
	}

	// NL join: outer driver.
	nl := exec.NewIndexedNLJoin(exec.NewScan(a, ""), exec.NewScan(b, ""), 0, 0)
	if f := DriverFraction(nl); f != 0 {
		t.Errorf("nl initial = %g", f)
	}

	// Sort and agg before/after completion.
	sc := exec.NewScan(table("c", []string{"k"}, randCol(rng, 50, 5)), "")
	srt := exec.NewSort(sc, 0)
	srt.Stats().SetEstimate(50, "optimizer")
	if f := DriverFraction(srt); f != 0 {
		t.Errorf("sort initial = %g", f)
	}
	if _, err := exec.Run(srt); err != nil {
		t.Fatal(err)
	}
	if f := DriverFraction(srt); f != 1 {
		t.Errorf("sort final = %g", f)
	}

	agg := exec.NewHashAgg(exec.NewScan(table("d", []string{"k"}, randCol(rng, 50, 5)), ""),
		[]int{0}, []exec.AggSpec{{Func: exec.CountStar}})
	agg.Stats().SetEstimate(5, "optimizer")
	if f := DriverFraction(agg); f != 0 {
		t.Errorf("agg initial = %g", f)
	}
	if _, err := exec.Run(agg); err != nil {
		t.Fatal(err)
	}
	if f := DriverFraction(agg); f != 1 {
		t.Errorf("agg final = %g", f)
	}

	// Project passes through to its child's driver.
	sc2 := exec.NewScan(table("e", []string{"k"}, randCol(rng, 10, 5)), "")
	pr := exec.ProjectColumns(sc2, [2]string{"e", "k"})
	if err := pr.Open(); err != nil {
		t.Fatal(err)
	}
	pr.Next()
	if f := DriverFraction(pr); f != 0.1 {
		t.Errorf("project driver fraction = %g", f)
	}
}

func TestJoinEstimatorAccessors(t *testing.T) {
	e := NewJoinEstimator(10)
	e.ObserveBuild(data.Int(1))
	if e.BuildHistogram().Count(data.Int(1)) != 1 {
		t.Error("BuildHistogram")
	}
	if e.Converged() {
		t.Error("not converged yet")
	}
	if e.Estimate() != 0 {
		t.Error("estimate before probes should be 0")
	}
	e.ObserveProbe(data.Int(1))
	e.MarkConverged()
	if !e.Converged() {
		t.Error("converged flag")
	}
}

func TestAggEstimatorAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	a := table("a", []string{"k"}, randCol(rng, 3000, 25))
	sc := exec.NewScan(a, "")
	agg := exec.NewHashAgg(sc, []int{0}, []exec.AggSpec{{Func: exec.CountStar}})
	att := Attach(agg)
	est := att.Aggs[agg]
	if est.Tracker() == nil || est.Chooser() != nil || est.OutputHistogram() != nil {
		t.Error("hash agg should be in tracker mode")
	}
	if _, err := exec.Run(agg); err != nil {
		t.Fatal(err)
	}
	if est.Gamma2() < 0 {
		t.Error("γ² negative")
	}
	if est.Source() != "gee" && est.Source() != "mle" {
		t.Errorf("source = %q", est.Source())
	}

	// Push-down mode accessors.
	b := table("b", []string{"k"}, randCol(rng, 500, 25))
	c := table("c", []string{"k"}, randCol(rng, 700, 25))
	j := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""), "b", "k", "c", "k")
	agg2 := exec.NewHashAgg(j, []int{j.Schema().MustResolve("c", "k")},
		[]exec.AggSpec{{Func: exec.CountStar}})
	att2 := Attach(agg2)
	est2 := att2.Aggs[agg2]
	if est2.OutputHistogram() == nil || est2.Tracker() != nil {
		t.Error("agg over join should be in push-down mode")
	}
	if _, err := exec.Run(agg2); err != nil {
		t.Fatal(err)
	}
	if est2.Gamma2() < 0 {
		t.Error("push-down γ² negative")
	}
	if est2.Source() != "agg-pushdown" {
		t.Errorf("source = %q", est2.Source())
	}
}

func TestStreamSizeEstimateVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := table("a", []string{"k"}, randCol(rng, 64, 8))
	sc := exec.NewScan(a, "")
	pr := exec.ProjectColumns(sc, [2]string{"a", "k"})
	if got := StreamSizeEstimate(pr); got != 64 {
		t.Errorf("project stream size = %g", got)
	}
	lim := exec.NewLimit(exec.NewScan(a, ""), 5)
	if _, err := exec.Run(lim); err != nil {
		t.Fatal(err)
	}
	if got := StreamSizeEstimate(lim); got != 5 {
		t.Errorf("done limit stream size = %g", got)
	}
	srt := exec.NewSort(exec.NewScan(a, ""), 0)
	srt.Stats().SetEstimate(64, "optimizer")
	if got := StreamSizeEstimate(srt); got != 64 {
		t.Errorf("sort stream size = %g", got)
	}
}

func TestComposeHelpers(t *testing.T) {
	var calls []string
	f1 := func(data.Tuple) { calls = append(calls, "1") }
	f2 := func(data.Tuple) { calls = append(calls, "2") }
	compose(f1, f2)(nil)
	if len(calls) != 2 || calls[0] != "1" {
		t.Errorf("compose order = %v", calls)
	}
	if compose(nil, f1) == nil || compose(f1, nil) == nil {
		t.Error("nil composition")
	}
	n := 0
	g := func() { n++ }
	compose0(g, g)()
	if n != 2 {
		t.Error("compose0")
	}
	if compose0(nil, g) == nil || compose0(g, nil) == nil {
		t.Error("nil compose0")
	}
	var vs []int64
	h := func(v int64) { vs = append(vs, v) }
	compose1(h, h)(7)
	if len(vs) != 2 || vs[0] != 7 {
		t.Error("compose1")
	}
	if compose1(nil, h) == nil || compose1(h, nil) == nil {
		t.Error("nil compose1")
	}
}

func TestHistogramStringKeysAndMemory(t *testing.T) {
	h := NewFreqHistogram()
	h.Add(data.Str("hello"))
	h.Add(data.Str("hello"))
	h.Add(data.Float(1.5))
	h.Add(data.Int(1))
	if h.Count(data.Str("hello")) != 2 || h.Count(data.Float(1.5)) != 1 {
		t.Error("mixed-kind counts wrong")
	}
	if h.Distinct() != 3 {
		t.Errorf("distinct = %d", h.Distinct())
	}
	if h.MemoryUsed() <= 3*8 {
		t.Error("string bytes not accounted")
	}
	if h.MemoryAllocated() <= h.MemoryUsed() {
		t.Error("allocated should exceed used")
	}
	// Each visits both maps.
	seen := 0
	h.Each(func(data.Value, int64) bool { seen++; return true })
	if seen != 3 {
		t.Errorf("Each visited %d", seen)
	}
	prof := h.FrequencyOfFrequencies()
	if prof[1] != 2 || prof[2] != 1 {
		t.Errorf("profile = %v", prof)
	}
}

func TestBucketHistogramMixedKinds(t *testing.T) {
	h := NewBucketHistogram(64)
	h.Add(data.Str("x"))
	h.Add(data.Float(2.5))
	h.Add(data.Int(3))
	if h.Total() != 3 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(data.Str("x")) < 1 {
		t.Error("string count lost")
	}
}

func TestFlipCmpAll(t *testing.T) {
	cases := map[expr.CmpOp]expr.CmpOp{
		expr.LT: expr.GT, expr.LE: expr.GE,
		expr.GT: expr.LT, expr.GE: expr.LE,
		expr.EQ: expr.EQ, expr.NE: expr.NE,
	}
	for in, want := range cases {
		if got := flipCmp(in); got != want {
			t.Errorf("flip(%v) = %v, want %v", in, got, want)
		}
	}
}
