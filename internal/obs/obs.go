// Package obs is the execution observability layer: a lock-light,
// allocation-conscious event tracer that the executor, the online
// estimators and the progress monitor publish into.
//
// Design constraints (ISSUE 3):
//
//   - A disabled tracer must cost ~0 on the executor hot path. The
//     Tracer is therefore a concrete struct pointer, never an
//     interface: callers guard every emission site with a plain
//     `if tr != nil` nil-check, so the no-trace path is one predictable
//     branch and zero interface/argument allocation. All methods are
//     additionally nil-receiver safe, so cold paths may call them
//     unguarded.
//
//   - Events are appended under a single mutex. Emission sites are
//     deliberately coarse — phase boundaries, estimator publish
//     boundaries (every 64/1024 tuples), spill switchovers — never
//     per-tuple, so the lock is uncontended in practice even with the
//     parallel partition pass running.
//
//   - The event stream is replayable: every event carries a process-wide
//     monotone sequence number and the elapsed time since the tracer was
//     created, so span nesting and estimator convergence (the paper's
//     Figures 3-6 raw material) can be reconstructed offline.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// SpanBegin opens an operator phase span ("build", "probe",
	// "partition[2]", "merge", ...).
	SpanBegin EventKind = iota + 1
	// SpanEnd closes the most recent span with the same Op and Phase,
	// carrying the phase's tuple/byte/spill counters.
	SpanEnd
	// Mark is a point event inside or outside any span ("spill",
	// "sample-end", "pipeline-start", ...).
	Mark
	// EstimateRefined records a refreshed cardinality estimate for one
	// operator (Estimate + Source are set).
	EstimateRefined
	// SourceTransition records an estimate-provenance change:
	// optimizer→once, once→once-exact, gee↔mle (Gamma2 set for chooser
	// flips crossing τ).
	SourceTransition
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case SpanBegin:
		return "begin"
	case SpanEnd:
		return "end"
	case Mark:
		return "mark"
	case EstimateRefined:
		return "estimate"
	case SourceTransition:
		return "transition"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one entry of the trace stream. Only the fields relevant to
// the Kind are populated; the zero value of the rest means "absent".
type Event struct {
	Seq     int64         // monotone per-tracer sequence number
	Elapsed time.Duration // since the tracer was created
	Kind    EventKind
	Op      string // operator label, e.g. "HashJoin(o_orderkey = l_orderkey)"
	Phase   string // span/mark name, or the refined level's label

	// Span/mark payload.
	Tuples int64 // tuples moved during the phase (SpanEnd) or at the mark
	Bytes  int64 // bytes moved/spilled during the phase
	Spills int64 // spill files produced during the phase

	// Estimator payload.
	Estimate float64 // refined N_i estimate (EstimateRefined)
	From     string  // previous source (SourceTransition)
	To       string  // new source (SourceTransition) or current source (EstimateRefined)
	Gamma2   float64 // squared coefficient of variation at a chooser flip
}

// String renders the event as one replay-log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %12s %-10s %s", e.Seq, e.Elapsed.Round(time.Microsecond), e.Kind, e.Op)
	if e.Phase != "" {
		fmt.Fprintf(&b, " %s", e.Phase)
	}
	switch e.Kind {
	case SpanEnd, Mark:
		if e.Tuples != 0 {
			fmt.Fprintf(&b, " tuples=%d", e.Tuples)
		}
		if e.Bytes != 0 {
			fmt.Fprintf(&b, " bytes=%d", e.Bytes)
		}
		if e.Spills != 0 {
			fmt.Fprintf(&b, " spills=%d", e.Spills)
		}
	case EstimateRefined:
		fmt.Fprintf(&b, " est=%.1f source=%s", e.Estimate, e.To)
	case SourceTransition:
		fmt.Fprintf(&b, " %s->%s", e.From, e.To)
		if e.Gamma2 != 0 {
			fmt.Fprintf(&b, " gamma2=%.3f", e.Gamma2)
		}
	}
	return b.String()
}

// Tracer accumulates the event stream of one query execution. The zero
// value is not usable; construct with New. A nil *Tracer is a valid
// "tracing disabled" value: every method is a no-op on it, and hot
// paths should guard emission with a nil-check before building the
// event at all.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	seq    int64
	events []Event
}

// New returns an empty tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// record stamps and appends one event.
func (t *Tracer) record(e Event) {
	if t == nil {
		return
	}
	elapsed := time.Since(t.start)
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	e.Elapsed = elapsed
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Begin opens a phase span for op.
func (t *Tracer) Begin(op, phase string) {
	t.record(Event{Kind: SpanBegin, Op: op, Phase: phase})
}

// End closes a phase span, attaching the phase's counters.
func (t *Tracer) End(op, phase string, tuples, bytes, spills int64) {
	t.record(Event{Kind: SpanEnd, Op: op, Phase: phase, Tuples: tuples, Bytes: bytes, Spills: spills})
}

// Mark records a point event (spill switchover, sample boundary,
// pipeline start/finish).
func (t *Tracer) Mark(op, phase string, tuples, bytes int64) {
	t.record(Event{Kind: Mark, Op: op, Phase: phase, Tuples: tuples, Bytes: bytes})
}

// Refine records a refreshed cardinality estimate for op.
func (t *Tracer) Refine(op, detail string, estimate float64, source string) {
	t.record(Event{Kind: EstimateRefined, Op: op, Phase: detail, Estimate: estimate, To: source})
}

// Transition records an estimate-source change (optimizer→once,
// once→once-exact, gee↔mle). gamma2 carries the chooser's squared
// coefficient of variation when relevant, else 0.
func (t *Tracer) Transition(op, detail, from, to string, gamma2 float64) {
	t.record(Event{Kind: SourceTransition, Op: op, Phase: detail, From: from, To: to, Gamma2: gamma2})
}

// Events returns a snapshot copy of the stream so far, in emission
// order. Safe to call concurrently with emission.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	return out
}

// Len returns the number of events recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.events)
	t.mu.Unlock()
	return n
}

// Dump renders the whole stream as a replay log, one event per line.
func (t *Tracer) Dump() string {
	evs := t.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
