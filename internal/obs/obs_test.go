package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilTracerSafe: every method must be a no-op on a nil receiver — the
// executor calls them behind nil checks, but estimator helpers may not.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Begin("op", "phase")
	tr.End("op", "phase", 1, 2, 3)
	tr.Mark("op", "phase", 1, 2)
	tr.Refine("op", "d", 1.5, "once")
	tr.Transition("op", "d", "gee", "mle", 11)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Errorf("nil tracer recorded events")
	}
	if tr.Dump() != "" {
		t.Errorf("nil tracer dump = %q", tr.Dump())
	}
}

func TestEventSequenceAndFields(t *testing.T) {
	tr := New()
	tr.Begin("HashJoin", "build")
	tr.End("HashJoin", "build", 100, 2048, 1)
	tr.Refine("HashJoin", "pipeline", 123.5, "once")
	tr.Transition("HashJoin", "pipeline", "once", "once-exact", 0)
	tr.Mark("Scan", "sample-end", 50, 0)
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i)+1 {
			t.Errorf("event %d seq = %d", i, e.Seq)
		}
		if i > 0 && e.Elapsed < evs[i-1].Elapsed {
			t.Errorf("elapsed not monotone at %d", i)
		}
	}
	kinds := []EventKind{SpanBegin, SpanEnd, EstimateRefined, SourceTransition, Mark}
	for i, k := range kinds {
		if evs[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, evs[i].Kind, k)
		}
	}
	if evs[1].Tuples != 100 || evs[1].Bytes != 2048 || evs[1].Spills != 1 {
		t.Errorf("end counters = %+v", evs[1])
	}
	if evs[2].Estimate != 123.5 || evs[2].To != "once" {
		t.Errorf("refine = %+v", evs[2])
	}
	if evs[3].From != "once" || evs[3].To != "once-exact" {
		t.Errorf("transition = %+v", evs[3])
	}
}

// TestEventsSnapshotIsolated: the returned slice must not alias the
// tracer's internal buffer.
func TestEventsSnapshotIsolated(t *testing.T) {
	tr := New()
	tr.Begin("a", "p")
	evs := tr.Events()
	tr.Begin("b", "p")
	if len(evs) != 1 {
		t.Fatalf("snapshot grew: %d", len(evs))
	}
	evs[0].Op = "mutated"
	if tr.Events()[0].Op != "a" {
		t.Error("snapshot aliases internal buffer")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Mark("op", "p", int64(i), 0)
			}
		}()
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != 800 {
		t.Fatalf("len = %d", len(evs))
	}
	seen := map[int64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New()
	tr.Begin("Scan(r)", "scan")
	tr.End("Scan(r)", "scan", 10, 0, 0)
	d := tr.Dump()
	if !strings.Contains(d, "Scan(r)") || !strings.Contains(d, "scan") {
		t.Errorf("dump missing fields:\n%s", d)
	}
	if len(strings.Split(strings.TrimSpace(d), "\n")) != 2 {
		t.Errorf("dump lines:\n%s", d)
	}
}
