package distinct

import (
	"math"

	"qpi/internal/data"
)

// MLE is the paper's maximum-likelihood-based estimator for low-skew
// data (§4.2). With f_i the number of groups observed exactly i times in
// t values, ĝ = Σ f_i, and the MLE plug-ins p̂ = i/t, the estimate is
//
//	D_t = ĝ + Σ_i f_i·[(1−i/t)^t − (1−i/t)^{2t}]
//
// — the groups seen so far plus the expected number of new groups in the
// next t reads (the paper's expectation Σ(1−p)^t − Σ(1−p)^{2t} with MLE
// plug-ins; see DESIGN.md for the note on the corrupted exponent in the
// printed formula). The estimate is monotone in expectation, converges to
// the true count, rarely overestimates but is prone to underestimation —
// exactly the behaviour the paper reports.
//
// Unlike GEE the estimate cannot be updated in O(1) per tuple, so it is
// recomputed on an adaptive interval (Algorithm 3): starting from a lower
// bound l, the recomputation interval doubles whenever the estimate moved
// by less than k (relative) since the last computation, up to an upper
// bound u, and resets to l otherwise.
type MLE struct {
	counts counter
	freqs  map[int64]int64 // f_i: number of groups with count i
	t      int64
	total  float64

	// Adaptive recomputation (Algorithm 3).
	lower, upper int64
	k            float64
	interval     int64
	sinceRecomp  int64
	cached       float64
	haveCache    bool
	recomputes   int64

	// Horizon selects the extrapolating variant (extension, see
	// MLEHorizon): estimate new groups over the whole remaining stream
	// with a Horvitz–Thompson correction instead of one lookahead window.
	horizon bool

	exhausted bool
}

// DefaultLowerFrac and DefaultUpperFrac are the paper's Algorithm 3
// parameters: l = 0.1% and u = 3.2% of the input size, doubling when the
// estimate moved less than 1%.
const (
	DefaultLowerFrac = 0.001
	DefaultUpperFrac = 0.032
	DefaultK         = 0.01
)

// NewMLE creates an MLE estimator for a stream of (estimated) length
// total, with the paper's default Algorithm 3 parameters.
func NewMLE(total float64) *MLE {
	l := int64(total * DefaultLowerFrac)
	u := int64(total * DefaultUpperFrac)
	return NewMLEWithInterval(total, l, u, DefaultK)
}

// NewMLEWithInterval creates an MLE estimator with explicit Algorithm 3
// parameters: recompute every `lower` tuples initially, doubling up to
// `upper` while consecutive estimates stay within relative k.
func NewMLEWithInterval(total float64, lower, upper int64, k float64) *MLE {
	if lower < 1 {
		lower = 1
	}
	if upper < lower {
		upper = lower
	}
	return &MLE{
		counts:   newCounter(),
		freqs:    map[int64]int64{},
		total:    total,
		lower:    lower,
		upper:    upper,
		k:        k,
		interval: lower,
	}
}

// NewMLEHorizon creates the extrapolating variant: the lookahead covers
// the entire remaining stream via the Horvitz–Thompson correction
// D = Σ_i f_i·(1−(1−i/t)^|T|)/(1−(1−i/t)^t), trading the paper
// estimator's underestimation for a small overestimation risk.
func NewMLEHorizon(total float64) *MLE {
	m := NewMLE(total)
	m.horizon = true
	return m
}

// Observe implements Estimator.
func (m *MLE) Observe(v data.Value) {
	n := m.counts.incr(v)
	if n > 1 {
		m.freqs[n-1]--
		if m.freqs[n-1] == 0 {
			delete(m.freqs, n-1)
		}
	}
	m.freqs[n]++
	m.t++
	m.sinceRecomp++
	if m.sinceRecomp >= m.interval {
		m.recompute()
	}
}

// SetTotal revises |T|.
func (m *MLE) SetTotal(total float64) { m.total = total }

// MarkExhausted freezes the estimator; the distinct count is now exact.
func (m *MLE) MarkExhausted() { m.exhausted = true }

// recompute evaluates the estimator and adapts the interval per
// Algorithm 3.
func (m *MLE) recompute() {
	old := m.cached
	m.cached = m.compute()
	m.haveCache = true
	m.recomputes++
	m.sinceRecomp = 0
	if old > 0 && m.cached > 0 {
		ratio := old / m.cached
		if ratio > 1-m.k && ratio < 1+m.k {
			m.interval *= 2
			if m.interval > m.upper {
				m.interval = m.upper
			}
			return
		}
	}
	m.interval = m.lower
}

// compute evaluates the MLE formula over the frequency-of-frequencies
// profile (O(distinct frequencies), typically far below O(groups)).
func (m *MLE) compute() float64 {
	if m.t == 0 {
		return 0
	}
	t := float64(m.t)
	if m.horizon {
		if float64(m.t) >= m.total {
			return float64(m.counts.distinct())
		}
		est := 0.0
		for i, fi := range m.freqs {
			q := 1 - float64(i)/t // (1 - p̂)
			if q <= 0 {
				est += float64(fi)
				continue
			}
			seenByT := 1 - math.Pow(q, t)
			if seenByT <= 0 {
				continue
			}
			seenByTotal := 1 - math.Pow(q, m.total)
			est += float64(fi) * seenByTotal / seenByT
		}
		return est
	}
	return MLEFromProfile(m.freqs, m.t, m.total)
}

// Estimate implements Estimator. It returns the value from the most
// recent scheduled recomputation (Algorithm 3), falling back to a fresh
// computation before the first interval elapses.
func (m *MLE) Estimate() float64 {
	if m.exhausted || float64(m.t) >= m.total {
		return float64(m.counts.distinct())
	}
	if !m.haveCache {
		return m.compute()
	}
	return m.cached
}

// EstimateFresh bypasses the recomputation schedule (used by tests and
// the chooser's final decisions).
func (m *MLE) EstimateFresh() float64 {
	if m.exhausted || float64(m.t) >= m.total {
		return float64(m.counts.distinct())
	}
	return m.compute()
}

// Seen implements Estimator.
func (m *MLE) Seen() int64 { return m.t }

// DistinctSeen implements Estimator.
func (m *MLE) DistinctSeen() int64 { return m.counts.distinct() }

// Recomputes returns how many times the estimate was recomputed — the
// Algorithm 3 ablation measures this against a fixed interval.
func (m *MLE) Recomputes() int64 { return m.recomputes }

// Interval returns the current recomputation interval.
func (m *MLE) Interval() int64 { return m.interval }
