package distinct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qpi/internal/data"
	"qpi/internal/zipf"
)

// feed streams n draws from g into est.
func feed(est Estimator, g *zipf.Generator, n int) {
	for i := 0; i < n; i++ {
		est.Observe(data.Int(g.Next()))
	}
}

// trueDistinct counts the actual distinct values of a fixed draw.
func drawAll(g *zipf.Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func distinctOf(vals []int64) int {
	set := map[int64]bool{}
	for _, v := range vals {
		set[v] = true
	}
	return len(set)
}

func TestGEEExactWhenAllSeen(t *testing.T) {
	vals := drawAll(zipf.MustNew(100, 1, 1, 0), 5000)
	g := NewGEE(float64(len(vals)))
	for _, v := range vals {
		g.Observe(data.Int(v))
	}
	if got := g.Estimate(); got != float64(distinctOf(vals)) {
		t.Errorf("GEE at full stream = %g, want %d", got, distinctOf(vals))
	}
	if g.Seen() != 5000 {
		t.Errorf("Seen = %d", g.Seen())
	}
}

func TestGEESingletonAccounting(t *testing.T) {
	g := NewGEE(100)
	g.Observe(data.Int(1))
	g.Observe(data.Int(2))
	g.Observe(data.Int(1))
	// values: 1 seen twice, 2 once → S1=1, Sn=1.
	// D = sqrt(100/3)*1 + 1.
	want := math.Sqrt(100.0/3) + 1
	if got := g.Estimate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Estimate = %g, want %g", got, want)
	}
}

func TestGEEFormulaMatchesDefinition(t *testing.T) {
	// Property: incremental S1/Sn always match recomputing from counts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGEE(1000)
		counts := map[int64]int64{}
		for i := 0; i < 300; i++ {
			v := int64(rng.Intn(50))
			g.Observe(data.Int(v))
			counts[v]++
		}
		var s1, sn int64
		for _, n := range counts {
			if n == 1 {
				s1++
			} else {
				sn++
			}
		}
		if g.Singletons() != s1 {
			return false
		}
		want := math.Sqrt(1000.0/300)*float64(s1) + float64(sn)
		return math.Abs(g.Estimate()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGEENullsFormOneGroup(t *testing.T) {
	g := NewGEE(10)
	g.Observe(data.Null())
	g.Observe(data.Null())
	g.MarkExhausted()
	if got := g.Estimate(); got != 1 {
		t.Errorf("NULL group estimate = %g, want 1", got)
	}
}

func TestMLEConvergesToTruth(t *testing.T) {
	const total = 20000
	vals := drawAll(zipf.MustNew(500, 0, 7, 0), total)
	m := NewMLE(total)
	for _, v := range vals {
		m.Observe(data.Int(v))
	}
	want := float64(distinctOf(vals))
	if got := m.Estimate(); got != want {
		t.Errorf("MLE at full stream = %g, want %g", got, want)
	}
}

func TestMLERarelyOverestimatesLowSkew(t *testing.T) {
	// Paper: MLE "rarely overestimates ... prone to underestimation",
	// and works best on low-skew data. Check at a 10% sample.
	const total = 30000
	g := zipf.MustNew(2000, 0, 11, 0)
	vals := drawAll(g, total)
	m := NewMLE(total)
	for _, v := range vals[:3000] {
		m.Observe(data.Int(v))
	}
	truth := float64(distinctOf(vals))
	est := m.EstimateFresh()
	if est > truth*1.10 {
		t.Errorf("MLE overestimates: est %g vs truth %g", est, truth)
	}
	if est < float64(m.DistinctSeen()) {
		t.Errorf("MLE below distinct-seen lower bound: %g < %d", est, m.DistinctSeen())
	}
}

func TestMLEBeatsGEEOnLowSkew(t *testing.T) {
	// The design rationale (Table 1): on uniform data with many groups,
	// MLE should be closer to the truth than GEE at small sample sizes.
	const total = 50000
	g := zipf.MustNew(5000, 0, 13, 0)
	vals := drawAll(g, total)
	truth := float64(distinctOf(vals))
	gee, mle := NewGEE(total), NewMLE(total)
	for _, v := range vals[:5000] { // 10% sample
		gee.Observe(data.Int(v))
		mle.Observe(data.Int(v))
	}
	geeErr := math.Abs(gee.Estimate()-truth) / truth
	mleErr := math.Abs(mle.EstimateFresh()-truth) / truth
	if mleErr >= geeErr {
		t.Errorf("MLE err %.3f should beat GEE err %.3f on low skew", mleErr, geeErr)
	}
}

func TestGEEGoodOnHighSkew(t *testing.T) {
	// On high-skew data GEE should be within a modest factor early.
	const total = 50000
	g := zipf.MustNew(1000, 2, 17, 0)
	vals := drawAll(g, total)
	truth := float64(distinctOf(vals))
	gee := NewGEE(total)
	for _, v := range vals[:10000] {
		gee.Observe(data.Int(v))
	}
	ratio := gee.Estimate() / truth
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("GEE ratio error %.2f on high skew (truth %g)", ratio, truth)
	}
}

func TestMLEAdaptiveIntervalDoubles(t *testing.T) {
	m := NewMLEWithInterval(100000, 10, 1000, 0.5)
	g := zipf.MustNew(10, 0, 1, 0) // tiny domain: estimate stabilizes fast
	feed(m, g, 2000)
	if m.Interval() <= 10 {
		t.Errorf("interval = %d, should have doubled beyond the lower bound", m.Interval())
	}
	if m.Interval() > 1000 {
		t.Errorf("interval = %d exceeds upper bound", m.Interval())
	}
	// A fixed interval of 10 would have recomputed 200 times.
	if m.Recomputes() >= 200 {
		t.Errorf("recomputes = %d, adaptive interval should save work", m.Recomputes())
	}
}

func TestMLEIntervalResetsOnChange(t *testing.T) {
	m := NewMLEWithInterval(1e9, 5, 10000, 0.0001)
	// With an extremely tight k, the estimate virtually always moves more
	// than k while new groups keep arriving, so the interval stays low.
	g := zipf.MustNew(1000000, 0, 3, 0)
	feed(m, g, 5000)
	if m.Interval() > 20 {
		t.Errorf("interval = %d, expected resets near lower bound", m.Interval())
	}
}

func TestMLEHorizonConvergesAndExceedsPlain(t *testing.T) {
	const total = 40000
	g := zipf.MustNew(3000, 0, 19, 0)
	vals := drawAll(g, total)
	plain, horizon := NewMLE(total), NewMLEHorizon(total)
	for _, v := range vals[:4000] {
		plain.Observe(data.Int(v))
		horizon.Observe(data.Int(v))
	}
	if horizon.EstimateFresh() < plain.EstimateFresh() {
		t.Errorf("horizon %g < plain %g; horizon should extrapolate further",
			horizon.EstimateFresh(), plain.EstimateFresh())
	}
	for _, v := range vals[4000:] {
		horizon.Observe(data.Int(v))
	}
	if got, want := horizon.Estimate(), float64(distinctOf(vals)); got != want {
		t.Errorf("horizon at full stream = %g, want %g", got, want)
	}
}

func TestChooserGamma2(t *testing.T) {
	c := NewChooser(1000, DefaultTau)
	// Perfectly uniform frequencies → γ² = 0.
	for v := int64(1); v <= 10; v++ {
		for i := 0; i < 5; i++ {
			c.Observe(data.Int(v))
		}
	}
	if g2 := c.Gamma2(); g2 != 0 {
		t.Errorf("uniform γ² = %g, want 0", g2)
	}
	if !c.UsingMLE() {
		t.Error("uniform data should select MLE")
	}
}

func TestChooserHighSkewSelectsGEE(t *testing.T) {
	c := NewChooser(200000, DefaultTau)
	g := zipf.MustNew(5000, 2, 23, 0)
	feed(c, g, 20000)
	if c.Gamma2() < DefaultTau {
		t.Fatalf("γ² = %g, expected high skew above τ=%g", c.Gamma2(), DefaultTau)
	}
	if c.UsingMLE() {
		t.Error("high skew should select GEE")
	}
	if c.Estimate() != c.GEEEstimate() {
		t.Error("chooser estimate should come from GEE")
	}
}

func TestChooserLowSkewSelectsMLE(t *testing.T) {
	c := NewChooser(200000, DefaultTau)
	g := zipf.MustNew(5000, 0, 29, 0)
	feed(c, g, 20000)
	if c.Gamma2() >= DefaultTau {
		t.Fatalf("γ² = %g, expected below τ", c.Gamma2())
	}
	if !c.UsingMLE() {
		t.Error("low skew should select MLE")
	}
	if c.Estimate() != c.MLEEstimate() {
		t.Error("chooser estimate should come from MLE")
	}
}

func TestChooserGamma2MatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChooser(10000, DefaultTau)
		counts := map[int64]float64{}
		for i := 0; i < 500; i++ {
			v := int64(rng.Intn(40))
			c.Observe(data.Int(v))
			counts[v]++
		}
		// Direct γ².
		g := float64(len(counts))
		mu := 500.0 / g
		varSum := 0.0
		for _, n := range counts {
			varSum += n * n
		}
		variance := varSum/g - mu*mu
		want := variance / (mu * mu)
		return math.Abs(c.Gamma2()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEstimatorsNeverBelowDistinctSeenAtExhaustion(t *testing.T) {
	f := func(seed int64, domRaw uint8, zRaw uint8) bool {
		dom := int(domRaw)%200 + 1
		z := float64(zRaw%25) / 10
		g := zipf.MustNew(dom, z, seed, seed*3+1)
		const n = 1000
		ests := []Estimator{NewGEE(n), NewMLE(n), NewChooser(n, DefaultTau)}
		vals := drawAll(g, n)
		for _, v := range vals {
			for _, e := range ests {
				e.Observe(data.Int(v))
			}
		}
		truth := float64(distinctOf(vals))
		for _, e := range ests {
			if e.Estimate() != truth {
				return false
			}
			if e.DistinctSeen() != int64(truth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSetTotalRevisesEstimates(t *testing.T) {
	g := NewGEE(100)
	g.Observe(data.Int(1))
	e1 := g.Estimate()
	g.SetTotal(10000)
	e2 := g.Estimate()
	if e2 <= e1 {
		t.Errorf("larger |T| should scale singleton estimate up: %g -> %g", e1, e2)
	}
	m := NewMLE(100)
	m.Observe(data.Int(1))
	m.SetTotal(10000)
	if m.Estimate() <= 0 {
		t.Error("MLE estimate should be positive after SetTotal")
	}
}
