package distinct

import "qpi/internal/data"

// counter tracks per-value observation counts with a fast path for
// integer grouping keys (the common case), keeping the per-tuple overhead
// of the aggregation estimators low — overhead is the paper's whole
// motivation for preferring these estimators over heavier ones (§4.2).
type counter struct {
	ints  map[int64]int64
	other map[data.Value]int64
}

func newCounter() counter {
	return counter{ints: make(map[int64]int64)}
}

// incr counts one observation and returns the value's new count.
func (c *counter) incr(v data.Value) int64 {
	if v.Kind == data.KindInt {
		n := c.ints[v.I] + 1
		c.ints[v.I] = n
		return n
	}
	if v.IsNull() {
		v = data.Null() // all NULLs form one group
	}
	if c.other == nil {
		c.other = make(map[data.Value]int64)
	}
	n := c.other[v] + 1
	c.other[v] = n
	return n
}

// distinct returns the number of distinct values observed.
func (c *counter) distinct() int64 { return int64(len(c.ints) + len(c.other)) }
