package distinct

import (
	"math"
	"sync/atomic"

	"qpi/internal/data"
)

// DefaultTau is the paper's γ² threshold: MLE is used while γ² < 10 and
// GEE otherwise (§5.1.4).
const DefaultTau = 10.0

// Chooser computes both the GEE and MLE estimates over a single shared
// set of counters and selects between them online using the squared
// coefficient of variation γ² of the observed group frequencies (§4.2
// end): low γ² means low skew, where MLE is the better estimator; high γ²
// means high skew, where GEE is.
//
// γ² is maintained incrementally: with g observed groups of frequencies
// n_i and t = Σ n_i, the mean is μ = t/g, the variance is (Σ n_i²)/g − μ²
// and γ² = var/μ². Σ n_i² updates in O(1) per tuple (n → n+1 adds 2n+1).
// The GEE terms update in O(1) per tuple (Algorithm 2) and the MLE value
// is recomputed from the shared frequency profile on the paper's adaptive
// interval (Algorithm 3) — one hash update per tuple in total, which is
// what keeps the chooser lightweight.
type Chooser struct {
	counts counter
	freqs  map[int64]int64 // f_i profile, shared by MLE and γ²
	t      int64
	total  float64
	tau    float64

	singles int64   // GEE S₁
	multis  int64   // GEE Sₙ
	sumSq   float64 // Σ n_i² for γ²

	// Algorithm 3 state for the MLE recomputation.
	lower, upper int64
	interval     int64
	sinceRecomp  int64
	mleCached    float64
	haveCache    bool

	exhausted  bool
	recomputes atomic.Int64 // MLE recomputations performed (Algorithm 3)
}

// NewChooser creates a chooser with threshold tau (use DefaultTau) over a
// stream of (estimated) length total.
func NewChooser(total float64, tau float64) *Chooser {
	lower := int64(total * DefaultLowerFrac)
	if lower < 1 {
		lower = 1
	}
	upper := int64(total * DefaultUpperFrac)
	if upper < lower {
		upper = lower
	}
	return &Chooser{
		counts:   newCounter(),
		freqs:    map[int64]int64{},
		total:    total,
		tau:      tau,
		lower:    lower,
		upper:    upper,
		interval: lower,
	}
}

// Observe implements Estimator.
func (c *Chooser) Observe(v data.Value) {
	n := c.counts.incr(v)
	switch n {
	case 1:
		c.singles++
	case 2:
		c.singles--
		c.multis++
	}
	if n > 1 {
		c.freqs[n-1]--
		if c.freqs[n-1] == 0 {
			delete(c.freqs, n-1)
		}
	}
	c.freqs[n]++
	c.sumSq += float64(2*n - 1)
	c.t++
	c.sinceRecomp++
	if c.sinceRecomp >= c.interval {
		c.recomputeMLE()
	}
}

// recomputeMLE refreshes the cached MLE value, adapting the interval per
// Algorithm 3.
func (c *Chooser) recomputeMLE() {
	old := c.mleCached
	c.recomputes.Add(1)
	c.mleCached = MLEFromProfile(c.freqs, c.t, c.total)
	c.haveCache = true
	c.sinceRecomp = 0
	if old > 0 && c.mleCached > 0 {
		ratio := old / c.mleCached
		if ratio > 1-DefaultK && ratio < 1+DefaultK {
			c.interval *= 2
			if c.interval > c.upper {
				c.interval = c.upper
			}
			return
		}
	}
	c.interval = c.lower
}

// SetTotal revises |T|.
func (c *Chooser) SetTotal(total float64) { c.total = total }

// MarkExhausted freezes the chooser; the distinct count is now exact.
func (c *Chooser) MarkExhausted() { c.exhausted = true }

// Gamma2 returns the current squared coefficient of variation of the
// observed group frequencies (0 when no groups).
func (c *Chooser) Gamma2() float64 {
	g := float64(c.counts.distinct())
	if g == 0 || c.t == 0 {
		return 0
	}
	mu := float64(c.t) / g
	variance := c.sumSq/g - mu*mu
	if variance < 0 {
		variance = 0
	}
	return variance / (mu * mu)
}

// UsingMLE reports which estimator the chooser currently selects.
func (c *Chooser) UsingMLE() bool { return c.Gamma2() < c.tau }

// Estimate implements Estimator: the selected estimator's value.
func (c *Chooser) Estimate() float64 {
	if c.exhausted || float64(c.t) >= c.total {
		return float64(c.counts.distinct())
	}
	if c.UsingMLE() {
		return c.MLEEstimate()
	}
	return c.GEEEstimate()
}

// GEEEstimate returns the GEE value over the shared counters.
func (c *Chooser) GEEEstimate() float64 {
	if c.t == 0 {
		return 0
	}
	if c.exhausted || float64(c.t) >= c.total {
		return float64(c.counts.distinct())
	}
	return math.Sqrt(c.total/float64(c.t))*float64(c.singles) + float64(c.multis)
}

// MLEEstimate returns the (interval-cached) MLE value over the shared
// profile.
func (c *Chooser) MLEEstimate() float64 {
	if c.exhausted || float64(c.t) >= c.total {
		return float64(c.counts.distinct())
	}
	if !c.haveCache {
		return MLEFromProfile(c.freqs, c.t, c.total)
	}
	return c.mleCached
}

// Seen implements Estimator.
func (c *Chooser) Seen() int64 { return c.t }

// DistinctSeen implements Estimator.
func (c *Chooser) DistinctSeen() int64 { return c.counts.distinct() }

var (
	_ Estimator = (*GEE)(nil)
	_ Estimator = (*MLE)(nil)
	_ Estimator = (*Chooser)(nil)
)

// Recomputes returns how many MLE recomputations (Algorithm 3) have run.
func (c *Chooser) Recomputes() int64 { return c.recomputes.Load() }
