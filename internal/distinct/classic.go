package distinct

import (
	"math"

	"qpi/internal/data"
)

// Classic distinct-value estimators from the literature the paper
// positions GEE/MLE against ([5, 12] and references therein). All are
// computable from the frequency-of-frequencies profile, so they plug into
// the same online machinery; the ext-distinct experiment compares them.

// Chao84FromProfile is Chao's estimator D = d + f₁²/(2·f₂): a lower-bound
// estimator driven by the singleton/doubleton ratio.
func Chao84FromProfile(freqs map[int64]int64, t int64, total float64) float64 {
	var d int64
	for _, fj := range freqs {
		d += fj
	}
	if t == 0 {
		return 0
	}
	if float64(t) >= total {
		return float64(d)
	}
	f1, f2 := freqs[1], freqs[2]
	if f2 == 0 {
		// Chao's bias-corrected form avoids the division blowup.
		return float64(d) + float64(f1*(f1-1))/2
	}
	return float64(d) + float64(f1*f1)/(2*float64(f2))
}

// Jackknife1FromProfile is the first-order jackknife
// D = d + (t-1)/t · f₁.
func Jackknife1FromProfile(freqs map[int64]int64, t int64, total float64) float64 {
	var d int64
	for _, fj := range freqs {
		d += fj
	}
	if t == 0 {
		return 0
	}
	if float64(t) >= total {
		return float64(d)
	}
	return float64(d) + float64(t-1)/float64(t)*float64(freqs[1])
}

// ShlosserFromProfile is Shlosser's estimator for a Bernoulli sample of
// rate q = t/total:
//
//	D = d + f₁ · Σᵢ (1-q)^i fᵢ / Σᵢ i·q·(1-q)^(i-1) fᵢ
//
// It is the classical choice for database sampling and the basis of
// several hybrid estimators in [5].
func ShlosserFromProfile(freqs map[int64]int64, t int64, total float64) float64 {
	var d int64
	for _, fj := range freqs {
		d += fj
	}
	if t == 0 {
		return 0
	}
	q := float64(t) / total
	if q >= 1 {
		return float64(d)
	}
	num, den := 0.0, 0.0
	for i, fi := range freqs {
		p := math.Pow(1-q, float64(i))
		num += p * float64(fi)
		den += float64(i) * q * math.Pow(1-q, float64(i-1)) * float64(fi)
	}
	if den <= 0 {
		return float64(d)
	}
	return float64(d) + float64(freqs[1])*num/den
}

// ClassicEstimator wraps one of the profile-based classics behind the
// Estimator interface so it can run online next to GEE/MLE.
type ClassicEstimator struct {
	counts counter
	freqs  map[int64]int64
	t      int64
	total  float64
	eval   func(map[int64]int64, int64, float64) float64
	name   string
}

// NewChao84 creates Chao's 1984 estimator over a stream of length total.
func NewChao84(total float64) *ClassicEstimator {
	return newClassic(total, Chao84FromProfile, "chao84")
}

// NewJackknife1 creates the first-order jackknife estimator.
func NewJackknife1(total float64) *ClassicEstimator {
	return newClassic(total, Jackknife1FromProfile, "jackknife1")
}

// NewShlosser creates Shlosser's estimator.
func NewShlosser(total float64) *ClassicEstimator {
	return newClassic(total, ShlosserFromProfile, "shlosser")
}

func newClassic(total float64, eval func(map[int64]int64, int64, float64) float64, name string) *ClassicEstimator {
	return &ClassicEstimator{
		counts: newCounter(),
		freqs:  map[int64]int64{},
		total:  total,
		eval:   eval,
		name:   name,
	}
}

// Name returns the estimator's short name.
func (c *ClassicEstimator) Name() string { return c.name }

// Observe implements Estimator.
func (c *ClassicEstimator) Observe(v data.Value) {
	n := c.counts.incr(v)
	if n > 1 {
		c.freqs[n-1]--
		if c.freqs[n-1] == 0 {
			delete(c.freqs, n-1)
		}
	}
	c.freqs[n]++
	c.t++
}

// Estimate implements Estimator.
func (c *ClassicEstimator) Estimate() float64 { return c.eval(c.freqs, c.t, c.total) }

// Seen implements Estimator.
func (c *ClassicEstimator) Seen() int64 { return c.t }

// DistinctSeen implements Estimator.
func (c *ClassicEstimator) DistinctSeen() int64 { return c.counts.distinct() }

// SetTotal revises |T|.
func (c *ClassicEstimator) SetTotal(total float64) { c.total = total }

var _ Estimator = (*ClassicEstimator)(nil)
