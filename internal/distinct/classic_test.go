package distinct

import (
	"math"
	"testing"

	"qpi/internal/data"
	"qpi/internal/zipf"
)

func TestClassicEstimatorsConvergeAtFullStream(t *testing.T) {
	const total = 20000
	vals := drawAll(zipf.MustNew(800, 1, 31, 0), total)
	truth := float64(distinctOf(vals))
	for _, e := range []*ClassicEstimator{
		NewChao84(total), NewJackknife1(total), NewShlosser(total),
	} {
		for _, v := range vals {
			e.Observe(data.Int(v))
		}
		if got := e.Estimate(); got != truth {
			t.Errorf("%s at full stream = %g, want %g", e.Name(), got, truth)
		}
		if e.Seen() != total || e.DistinctSeen() != int64(truth) {
			t.Errorf("%s counters wrong", e.Name())
		}
	}
}

func TestClassicEstimatorsReasonableMidway(t *testing.T) {
	const total = 40000
	vals := drawAll(zipf.MustNew(2000, 0, 37, 0), total)
	truth := float64(distinctOf(vals))
	for _, e := range []*ClassicEstimator{
		NewChao84(total), NewJackknife1(total), NewShlosser(total),
	} {
		for _, v := range vals[:8000] { // 20% sample
			e.Observe(data.Int(v))
		}
		got := e.Estimate()
		// These are literature estimators with known biases; accept a
		// broad envelope but catch gross breakage.
		if got < float64(e.DistinctSeen()) || got > 5*truth {
			t.Errorf("%s midway = %g (truth %g, seen %d)", e.Name(), got, truth, e.DistinctSeen())
		}
	}
}

func TestChaoBiasCorrectedWhenNoDoubletons(t *testing.T) {
	// All singletons: f2=0 must not divide by zero.
	freqs := map[int64]int64{1: 10}
	got := Chao84FromProfile(freqs, 10, 1000)
	want := 10 + float64(10*9)/2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Chao bias-corrected = %g, want %g", got, want)
	}
}

func TestShlosserDegeneracies(t *testing.T) {
	if got := ShlosserFromProfile(map[int64]int64{}, 0, 100); got != 0 {
		t.Errorf("empty = %g", got)
	}
	// Full sample: exact.
	if got := ShlosserFromProfile(map[int64]int64{1: 5}, 100, 100); got != 5 {
		t.Errorf("full sample = %g", got)
	}
}

func TestSetTotalClassic(t *testing.T) {
	e := NewShlosser(100)
	e.Observe(data.Int(1))
	e.Observe(data.Int(2))
	before := e.Estimate()
	e.SetTotal(100000)
	if after := e.Estimate(); after <= before {
		t.Errorf("larger |T| should raise Shlosser: %g -> %g", before, after)
	}
}
