package distinct

import (
	"math"
	"sync/atomic"
)

// ProfileTracker is the zero-hashing variant of the chooser: instead of
// maintaining its own value→count map, it consumes the per-tuple group
// count transitions that a hash aggregation already computes for free
// (exec.HashAgg's OnInputGroupCount hook). This is the paper's actual
// integration — estimation interleaved with the operator's own
// partitioning work — and makes the per-tuple overhead a few arithmetic
// updates.
type ProfileTracker struct {
	freqs map[int64]int64 // f_i profile
	g     int64           // distinct groups seen
	t     int64
	total float64
	tau   float64

	singles int64
	multis  int64
	sumSq   float64

	// Algorithm 3 state for MLE recomputation.
	lower, upper int64
	interval     int64
	sinceRecomp  int64
	mleCached    float64
	haveCache    bool

	exhausted  bool
	recomputes atomic.Int64 // MLE recomputations performed (Algorithm 3)
}

// NewProfileTracker creates a tracker for a stream of (estimated) length
// total with chooser threshold tau.
func NewProfileTracker(total, tau float64) *ProfileTracker {
	lower := int64(total * DefaultLowerFrac)
	if lower < 1 {
		lower = 1
	}
	upper := int64(total * DefaultUpperFrac)
	if upper < lower {
		upper = lower
	}
	return &ProfileTracker{
		freqs:    map[int64]int64{},
		total:    total,
		tau:      tau,
		lower:    lower,
		upper:    upper,
		interval: lower,
	}
}

// ObserveCount consumes one tuple's group count transition: n is the
// tuple's group's new observation count (1 = new group).
func (p *ProfileTracker) ObserveCount(n int64) {
	switch n {
	case 1:
		p.g++
		p.singles++
	case 2:
		p.singles--
		p.multis++
	}
	if n > 1 {
		p.freqs[n-1]--
		if p.freqs[n-1] == 0 {
			delete(p.freqs, n-1)
		}
	}
	p.freqs[n]++
	p.sumSq += float64(2*n - 1)
	p.t++
	p.sinceRecomp++
	if p.sinceRecomp >= p.interval {
		p.recomputeMLE()
	}
}

// ObserveCounts consumes a span of group-count transitions in order —
// the span-at-a-time form of ObserveCount, delivered once per columnar
// input batch. Tracker state (profile, moments, MLE recompute cadence)
// is identical to observing each transition individually.
func (p *ProfileTracker) ObserveCounts(ns []int64) {
	for _, n := range ns {
		p.ObserveCount(n)
	}
}

func (p *ProfileTracker) recomputeMLE() {
	old := p.mleCached
	p.recomputes.Add(1)
	p.mleCached = MLEFromProfile(p.freqs, p.t, p.total)
	p.haveCache = true
	p.sinceRecomp = 0
	if old > 0 && p.mleCached > 0 {
		ratio := old / p.mleCached
		if ratio > 1-DefaultK && ratio < 1+DefaultK {
			p.interval *= 2
			if p.interval > p.upper {
				p.interval = p.upper
			}
			return
		}
	}
	p.interval = p.lower
}

// SetTotal revises |T|.
func (p *ProfileTracker) SetTotal(total float64) { p.total = total }

// DisableMLERecompute turns off the Algorithm 3 MLE recomputation —
// used when the caller only wants the O(1)-per-tuple GEE path (ablation
// and overhead measurements).
func (p *ProfileTracker) DisableMLERecompute() {
	p.interval = math.MaxInt64
}

// MarkExhausted freezes the tracker; the distinct count is now exact.
func (p *ProfileTracker) MarkExhausted() { p.exhausted = true }

// Gamma2 returns the skew measure γ².
func (p *ProfileTracker) Gamma2() float64 {
	if p.g == 0 || p.t == 0 {
		return 0
	}
	mu := float64(p.t) / float64(p.g)
	variance := p.sumSq/float64(p.g) - mu*mu
	if variance < 0 {
		variance = 0
	}
	return variance / (mu * mu)
}

// UsingMLE reports the current selection.
func (p *ProfileTracker) UsingMLE() bool { return p.Gamma2() < p.tau }

// Estimate returns the chooser-selected estimate.
func (p *ProfileTracker) Estimate() float64 {
	if p.exhausted || float64(p.t) >= p.total {
		return float64(p.g)
	}
	if p.UsingMLE() {
		return p.MLEEstimate()
	}
	return p.GEEEstimate()
}

// GEEEstimate returns the GEE value.
func (p *ProfileTracker) GEEEstimate() float64 {
	if p.t == 0 {
		return 0
	}
	if p.exhausted || float64(p.t) >= p.total {
		return float64(p.g)
	}
	return math.Sqrt(p.total/float64(p.t))*float64(p.singles) + float64(p.multis)
}

// MLEEstimate returns the (interval-cached) MLE value.
func (p *ProfileTracker) MLEEstimate() float64 {
	if p.exhausted || float64(p.t) >= p.total {
		return float64(p.g)
	}
	if !p.haveCache {
		return MLEFromProfile(p.freqs, p.t, p.total)
	}
	return p.mleCached
}

// Seen returns the number of transitions observed.
func (p *ProfileTracker) Seen() int64 { return p.t }

// DistinctSeen returns the number of groups observed.
func (p *ProfileTracker) DistinctSeen() int64 { return p.g }

// Recomputes returns how many MLE recomputations (Algorithm 3) have run.
func (p *ProfileTracker) Recomputes() int64 { return p.recomputes.Load() }
