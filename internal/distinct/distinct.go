// Package distinct implements the paper's online distinct-value (number
// of groups) estimators for aggregation operators (§4.2):
//
//   - GEE, the Guaranteed Error Estimator of Charikar et al. [5],
//     maintained fully incrementally (Algorithm 2);
//   - MLE, the paper's new estimator for low-skew data, recomputed on an
//     adaptive interval (Algorithm 3);
//   - a chooser that tracks the squared coefficient of variation γ² of
//     the observed group frequencies and picks GEE on high-skew data and
//     MLE otherwise (threshold τ = 10, §5.1.4).
//
// All estimators consume a random stream of grouping values of known (or
// estimated) total length |T| and estimate the number of distinct values
// in the full stream.
package distinct

import (
	"math"

	"qpi/internal/data"
)

// Estimator is the common contract of the online distinct estimators.
type Estimator interface {
	// Observe consumes the next grouping value of the stream.
	Observe(v data.Value)
	// Estimate returns the current estimate of the number of distinct
	// values in the full stream.
	Estimate() float64
	// Seen returns the number of values observed so far.
	Seen() int64
	// DistinctSeen returns the number of distinct values observed so far
	// (a lower bound on the truth).
	DistinctSeen() int64
}

// GEE is the Guaranteed Error Estimator, maintained incrementally
// (Algorithm 2):
//
//	D_t = sqrt(|T|/t)·f₁ + Σ_{j≥2} f_j
//
// where f₁ is the number of singleton values in the sample and the second
// term counts values seen at least twice. GEE works best on high-skew
// data; on low-skew data with many rare groups it can overestimate
// severely for small samples (§4.2), which is why the chooser exists.
type GEE struct {
	counts    counter
	singles   int64 // S₁: values seen exactly once
	multis    int64 // Sₙ: values seen more than once
	t         int64
	total     float64 // |T|
	exhausted bool
}

// NewGEE creates a GEE estimator for a stream of (estimated) total length
// total.
func NewGEE(total float64) *GEE {
	return &GEE{counts: newCounter(), total: total}
}

// Observe implements Estimator (the paper's Algorithm 2 update).
func (g *GEE) Observe(v data.Value) {
	switch g.counts.incr(v) {
	case 1:
		g.singles++
	case 2:
		g.singles--
		g.multis++
	}
	g.t++
}

// SetTotal revises |T| (when the stream length itself is being
// estimated).
func (g *GEE) SetTotal(total float64) { g.total = total }

// MarkExhausted freezes the estimator once the full stream has been seen:
// the distinct count is now exact.
func (g *GEE) MarkExhausted() { g.exhausted = true }

// Estimate implements Estimator.
func (g *GEE) Estimate() float64 {
	if g.t == 0 {
		return 0
	}
	if g.exhausted || float64(g.t) >= g.total {
		return float64(g.counts.distinct())
	}
	scale := math.Sqrt(g.total / float64(g.t))
	return scale*float64(g.singles) + float64(g.multis)
}

// Seen implements Estimator.
func (g *GEE) Seen() int64 { return g.t }

// DistinctSeen implements Estimator.
func (g *GEE) DistinctSeen() int64 { return g.counts.distinct() }

// Singletons returns S₁ (exposed for white-box tests).
func (g *GEE) Singletons() int64 { return g.singles }
