package distinct

import "math"

// This file computes the estimators directly from a frequency-of-
// frequencies profile (f_j = number of groups observed exactly j times in
// t observations). The aggregation push-down of §4.2 needs this form: when
// an aggregation sits on top of a join on the same attribute, the
// estimators run over the *estimated output distribution histogram* built
// during the join's probe pass rather than over a tuple stream.

// GEEFromProfile evaluates the GEE formula sqrt(total/t)·f₁ + Σ_{j≥2} f_j.
func GEEFromProfile(freqs map[int64]int64, t int64, total float64) float64 {
	if t == 0 {
		return 0
	}
	if float64(t) >= total {
		var g int64
		for _, fj := range freqs {
			g += fj
		}
		return float64(g)
	}
	var f1, rest int64
	for j, fj := range freqs {
		if j == 1 {
			f1 = fj
		} else if j >= 2 {
			rest += fj
		}
	}
	return math.Sqrt(total/float64(t))*float64(f1) + float64(rest)
}

// MLEFromProfile evaluates the MLE formula
// ĝ + Σ_j f_j·[(1−j/t)^t − (1−j/t)^{2t}].
func MLEFromProfile(freqs map[int64]int64, t int64, total float64) float64 {
	if t == 0 {
		return 0
	}
	var g int64
	for _, fj := range freqs {
		g += fj
	}
	if float64(t) >= total {
		return float64(g)
	}
	tf := float64(t)
	newGroups := 0.0
	for j, fj := range freqs {
		q := 1 - float64(j)/tf
		if q <= 0 {
			continue
		}
		pt := math.Pow(q, tf)
		newGroups += float64(fj) * (pt - pt*pt)
	}
	return float64(g) + newGroups
}

// Gamma2FromProfile computes the squared coefficient of variation of the
// group frequencies described by the profile.
func Gamma2FromProfile(freqs map[int64]int64, t int64) float64 {
	var g int64
	sumSq := 0.0
	for j, fj := range freqs {
		g += fj
		sumSq += float64(fj) * float64(j) * float64(j)
	}
	if g == 0 || t == 0 {
		return 0
	}
	mu := float64(t) / float64(g)
	variance := sumSq/float64(g) - mu*mu
	if variance < 0 {
		variance = 0
	}
	return variance / (mu * mu)
}

// ChooseFromProfile applies the paper's τ rule to a profile: it returns
// the MLE estimate when γ² < tau and the GEE estimate otherwise, along
// with which was used.
func ChooseFromProfile(freqs map[int64]int64, t int64, total, tau float64) (est float64, usedMLE bool) {
	if Gamma2FromProfile(freqs, t) < tau {
		return MLEFromProfile(freqs, t, total), true
	}
	return GEEFromProfile(freqs, t, total), false
}
