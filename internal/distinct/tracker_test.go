package distinct

import (
	"math"
	"testing"

	"qpi/internal/data"
	"qpi/internal/zipf"
)

// feedBoth streams values into a chooser and mirrors the group-count
// transitions into a tracker, as a hash aggregation would.
func feedBoth(c *Chooser, p *ProfileTracker, vals []int64) {
	counts := map[int64]int64{}
	for _, v := range vals {
		c.Observe(data.Int(v))
		counts[v]++
		p.ObserveCount(counts[v])
	}
}

func TestTrackerMatchesChooser(t *testing.T) {
	const total = 30000
	vals := drawAll(zipf.MustNew(1500, 1, 41, 0), total)
	c := NewChooser(total, DefaultTau)
	p := NewProfileTracker(total, DefaultTau)
	feedBoth(c, p, vals[:6000])
	if math.Abs(c.Gamma2()-p.Gamma2()) > 1e-9 {
		t.Errorf("γ²: chooser %g vs tracker %g", c.Gamma2(), p.Gamma2())
	}
	if c.UsingMLE() != p.UsingMLE() {
		t.Error("selection disagrees")
	}
	if math.Abs(c.GEEEstimate()-p.GEEEstimate()) > 1e-9 {
		t.Errorf("GEE: %g vs %g", c.GEEEstimate(), p.GEEEstimate())
	}
	// MLE caches on the same Algorithm 3 schedule with the same inputs.
	if math.Abs(c.MLEEstimate()-p.MLEEstimate()) > 1e-9 {
		t.Errorf("MLE: %g vs %g", c.MLEEstimate(), p.MLEEstimate())
	}
	if c.DistinctSeen() != p.DistinctSeen() || c.Seen() != p.Seen() {
		t.Error("counters disagree")
	}
}

func TestTrackerExactAtExhaustion(t *testing.T) {
	const total = 5000
	vals := drawAll(zipf.MustNew(300, 0, 43, 0), total)
	p := NewProfileTracker(total, DefaultTau)
	counts := map[int64]int64{}
	for _, v := range vals {
		counts[v]++
		p.ObserveCount(counts[v])
	}
	p.MarkExhausted()
	if got, want := p.Estimate(), float64(distinctOf(vals)); got != want {
		t.Errorf("exhausted estimate %g, want %g", got, want)
	}
}

func TestTrackerDisableMLERecompute(t *testing.T) {
	p := NewProfileTracker(100000, -1)
	p.DisableMLERecompute()
	counts := map[int64]int64{}
	for _, v := range drawAll(zipf.MustNew(50, 0, 47, 0), 5000) {
		counts[v]++
		p.ObserveCount(counts[v])
	}
	if p.haveCache {
		t.Error("MLE recompute ran despite being disabled")
	}
	// τ = -1 forces GEE.
	if p.UsingMLE() {
		t.Error("τ=-1 should never select MLE")
	}
	if p.Estimate() != p.GEEEstimate() {
		t.Error("estimate should be the GEE value")
	}
}

func TestTrackerSetTotal(t *testing.T) {
	p := NewProfileTracker(100, DefaultTau)
	p.ObserveCount(1)
	before := p.GEEEstimate()
	p.SetTotal(10000)
	if after := p.GEEEstimate(); after <= before {
		t.Errorf("larger |T| should scale singletons: %g -> %g", before, after)
	}
}

func TestChooserMarkExhausted(t *testing.T) {
	c := NewChooser(1000, DefaultTau)
	c.Observe(data.Int(1))
	c.Observe(data.Int(1))
	c.Observe(data.Int(2))
	c.MarkExhausted()
	if c.Estimate() != 2 || c.GEEEstimate() != 2 || c.MLEEstimate() != 2 {
		t.Errorf("exhausted estimates = %g/%g/%g, want 2",
			c.Estimate(), c.GEEEstimate(), c.MLEEstimate())
	}
}

func TestProfileHelpers(t *testing.T) {
	freqs := map[int64]int64{1: 4, 2: 3, 5: 1}
	t64 := int64(4*1 + 3*2 + 5)
	if got := GEEFromProfile(freqs, t64, float64(t64)); got != 8 {
		t.Errorf("GEE at full = %g, want 8", got)
	}
	if got := MLEFromProfile(freqs, t64, float64(t64)); got != 8 {
		t.Errorf("MLE at full = %g, want 8", got)
	}
	if got := GEEFromProfile(freqs, 0, 100); got != 0 {
		t.Errorf("GEE empty = %g", got)
	}
	if got := MLEFromProfile(nil, 0, 100); got != 0 {
		t.Errorf("MLE empty = %g", got)
	}
	if got := Gamma2FromProfile(nil, 0); got != 0 {
		t.Errorf("γ² empty = %g", got)
	}
	est, usedMLE := ChooseFromProfile(freqs, t64, 1000, 1e18)
	if !usedMLE {
		t.Error("huge τ should select MLE")
	}
	if est <= 0 {
		t.Errorf("estimate = %g", est)
	}
	est2, usedMLE2 := ChooseFromProfile(freqs, t64, 1000, -1)
	if usedMLE2 {
		t.Error("τ=-1 should select GEE")
	}
	if est2 <= 0 {
		t.Errorf("estimate = %g", est2)
	}
}
