package distinct

import (
	"math"
	"math/rand"
	"testing"

	"qpi/internal/data"
)

// Brute-force cross-check of the chooser's incremental state: an
// independent frequency map re-derives γ², the GEE terms and the exact
// distinct count from scratch at every step, so any drift in the O(1)
// update rules (Σ n_i², singles/multis transitions, freqs profile
// maintenance) is caught on the very tuple it happens.

// bruteGamma2 recomputes γ² from a plain frequency map.
func bruteGamma2(freqs map[int64]int64) float64 {
	g := float64(len(freqs))
	var t, sumSq float64
	for _, n := range freqs {
		t += float64(n)
		sumSq += float64(n * n)
	}
	if g == 0 || t == 0 {
		return 0
	}
	mu := t / g
	variance := sumSq/g - mu*mu
	if variance < 0 {
		variance = 0
	}
	return variance / (mu * mu)
}

func checkChooserAgainstBruteForce(t *testing.T, seed int64, n, dom int, skew bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := NewChooser(float64(n), DefaultTau)
	freqs := map[int64]int64{}
	singles, multis := int64(0), int64(0)
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(dom))
		if skew {
			// Square the draw to pile mass onto low values.
			v = v * v / int64(dom)
		}
		c.Observe(data.Int(v))
		freqs[v]++
		switch freqs[v] {
		case 1:
			singles++
		case 2:
			singles--
			multis++
		}

		if got, want := c.DistinctSeen(), int64(len(freqs)); got != want {
			t.Fatalf("step %d: DistinctSeen=%d, brute force %d", i, got, want)
		}
		if got, want := c.Gamma2(), bruteGamma2(freqs); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("step %d: Gamma2=%g, brute force %g", i, got, want)
		}
		if got, want := c.UsingMLE(), c.Gamma2() < DefaultTau; got != want {
			t.Fatalf("step %d: UsingMLE=%v inconsistent with γ²=%g", i, got, c.Gamma2())
		}
		if t64 := int64(i + 1); c.Seen() != t64 {
			t.Fatalf("step %d: Seen=%d, want %d", i, c.Seen(), t64)
		}
		// Mid-stream GEE from the brute-force S₁/Sₙ split.
		if int64(i+1) < int64(n) {
			wantGEE := math.Sqrt(float64(n)/float64(i+1))*float64(singles) + float64(multis)
			if got := c.GEEEstimate(); math.Abs(got-wantGEE) > 1e-9*(1+wantGEE) {
				t.Fatalf("step %d: GEE=%g, brute force %g", i, got, wantGEE)
			}
		}
		// Every estimate must stay finite and non-negative.
		for _, est := range []float64{c.Estimate(), c.GEEEstimate(), c.MLEEstimate()} {
			if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
				t.Fatalf("step %d: estimate %g", i, est)
			}
		}
	}
	// The full pass has been observed: every estimator collapses to the
	// exact distinct count, both by t >= total and by explicit exhaustion.
	exact := float64(len(freqs))
	if got := c.Estimate(); got != exact {
		t.Fatalf("estimate at t=total is %g, exact %g", got, exact)
	}
	c.MarkExhausted()
	for _, got := range []float64{c.Estimate(), c.GEEEstimate(), c.MLEEstimate()} {
		if got != exact {
			t.Fatalf("exhausted estimate %g, exact %g", got, exact)
		}
	}
}

func TestChooserMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		checkChooserAgainstBruteForce(t, seed, 400, 1+int(seed)*13, seed%2 == 0)
	}
}

func FuzzChooser(f *testing.F) {
	f.Add(int64(1), 200, 16, false)
	f.Add(int64(5), 500, 3, true)
	f.Add(int64(9), 64, 64, false)
	f.Fuzz(func(t *testing.T, seed int64, n, dom int, skew bool) {
		if n < 1 || n > 2000 || dom < 1 || dom > 1000 {
			t.Skip("out of bounds")
		}
		checkChooserAgainstBruteForce(t, seed, n, dom, skew)
	})
}
