package qpi

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"qpi/internal/data"
	"qpi/internal/exec"
)

// Tests for the query-lifecycle contract: single-use claiming is race
// free, Run/Start honour cancellation and deadlines in every execution
// mode, the monitor lands in the matching terminal state, and nothing
// (goroutines, spill descriptors) leaks.

func bigJoinEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.MustCreateSkewedTable("r", 30000, 1, SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 1})
	e.MustCreateSkewedTable("s", 40000, 2, SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 2})
	return e
}

// TestQueryStartRace hammers the single-use claim from many goroutines:
// exactly one Run/Start may win. Run with -race.
func TestQueryStartRace(t *testing.T) {
	q := bigJoinEngine(t).MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan *Running, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := q.Start(nil, WithInterval(1000)); err == nil {
				wins <- r
			}
		}()
	}
	wg.Wait()
	close(wins)
	var winners []*Running
	for r := range wins {
		winners = append(winners, r)
	}
	if len(winners) != 1 {
		t.Fatalf("%d of %d concurrent Starts won the claim, want exactly 1", len(winners), racers)
	}
	if _, err := winners[0].Wait(); err != nil {
		t.Fatal(err)
	}
	// The claim also blocks the synchronous entry points afterwards.
	if _, err := q.Run(nil); err == nil {
		t.Error("Run accepted an already-started query")
	}
	if _, err := q.Rows(); err == nil {
		t.Error("Rows accepted an already-started query")
	}
}

func TestRunExpiredDeadline(t *testing.T) {
	q := bigJoinEngine(t).MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := q.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if st := q.Report().State; st != "cancelled" {
		t.Errorf("terminal state = %q, want cancelled", st)
	}
}

func TestRowsContextCancelled(t *testing.T) {
	q := bigJoinEngine(t).MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.RowsContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st := q.Report().State; st != "cancelled" {
		t.Errorf("terminal state = %q, want cancelled", st)
	}
}

// TestStartCancelMidFlight cancels via Running.Cancel while the join
// runs and checks the full contract: Wait returns context.Canceled, the
// published report has the cancelled terminal state, and the execution
// goroutine exits.
func TestStartCancelMidFlight(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []CompileOption
	}{
		{"tuple", nil},
		{"batched", []CompileOption{WithBatchExecution(1)}},
		{"batched-parallel", []CompileOption{WithBatchExecution(4)}},
		{"spilling", []CompileOption{WithMemoryBudget(64 * 1024)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			q := bigJoinEngine(t).MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k", mode.opts...)
			parked, resume := parkFirstScan(q, 5000)
			r, err := q.Start(context.Background(), WithInterval(500))
			if err != nil {
				t.Fatal(err)
			}
			<-parked
			r.Cancel()
			resume()
			if _, err := r.Wait(); !errors.Is(err, context.Canceled) {
				t.Fatalf("Wait = %v, want context.Canceled", err)
			}
			if st := r.Report().State; st != "cancelled" {
				t.Errorf("published terminal state = %q, want cancelled", st)
			}
			r.Cancel() // idempotent after completion
			deadline := time.Now().Add(3 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Errorf("goroutine leak: %d before, %d after", before, n)
			}
		})
	}
}

// parkFirstScan makes the plan's first scan block at its n-th tuple until
// resume is called; parked is closed when the scan reaches the gate.
func parkFirstScan(q *Query, n int) (parked chan struct{}, resume func()) {
	parked = make(chan struct{})
	gate := make(chan struct{})
	count := 0
	installed := false
	exec.Walk(q.root, func(op exec.Operator) {
		sc, ok := op.(*exec.Scan)
		if !ok || installed {
			return
		}
		installed = true
		prev := sc.OnTuple
		sc.OnTuple = func(tu data.Tuple) {
			if prev != nil {
				prev(tu)
			}
			if count++; count == n {
				close(parked)
				<-gate
			}
		}
	})
	var once sync.Once
	return parked, func() { once.Do(func() { close(gate) }) }
}

// TestBatchedProgressPublishes pins satellite semantics: under
// WithBatchExecution the per-tuple monitor hooks still fire on the
// execution goroutine, so a Running's published Progress must advance
// mid-flight (observed deterministically at a parked scan) and reach the
// terminal done state.
func TestBatchedProgressPublishes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[workers], func(t *testing.T) {
			q := bigJoinEngine(t).MustQuery(
				"SELECT r.k FROM r JOIN s ON r.k = s.k", WithBatchExecution(workers))
			parked, resume := parkFirstScan(q, 20000)
			r, err := q.Start(context.Background(), WithInterval(500))
			if err != nil {
				t.Fatal(err)
			}
			<-parked
			if p := r.Progress(); p <= 0 || p >= 1 {
				t.Errorf("mid-flight batched progress = %g, want in (0,1)", p)
			}
			if st := r.Report().State; st != "running" {
				t.Errorf("mid-flight state = %q, want running", st)
			}
			resume()
			n, err := r.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("join produced no rows")
			}
			rep := r.Report()
			if rep.State != "done" {
				t.Errorf("terminal state = %q, want done", rep.State)
			}
			if rep.Progress < 0.999 {
				t.Errorf("final progress = %g, want ~1", rep.Progress)
			}
		})
	}
}

// TestRunProgressCallbackBatched: the synchronous Run path's onProgress
// callback must also advance under batch execution.
func TestRunProgressCallbackBatched(t *testing.T) {
	q := bigJoinEngine(t).MustQuery(
		"SELECT r.k FROM r JOIN s ON r.k = s.k", WithBatchExecution(4))
	var reports []Report
	if _, err := q.Run(nil, WithProgress(func(r Report) { reports = append(reports, r) }, 2000)); err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("only %d progress reports published", len(reports))
	}
	// No monotonicity assertion: the online estimators may revise T
	// upward mid-flight, which legitimately dips the gnm ratio.
	sawPartial := false
	for _, r := range reports {
		if r.Progress > 0 && r.Progress < 1 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("no partial progress observed in batched mode")
	}
	if last := reports[len(reports)-1]; last.State != "done" || last.Progress < 0.999 {
		t.Errorf("final report %+v, want done at ~1", last)
	}
}

// TestDashboardShowsCancelled: a cancelled query's dashboard row reports
// the cancelled state, distinguishable from a stalled one.
func TestDashboardShowsCancelled(t *testing.T) {
	e := bigJoinEngine(t)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	d := NewDashboard()
	if err := d.Register("victim", q); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	snap := d.Snapshot()
	if len(snap) != 1 || snap[0].State != "cancelled" {
		t.Fatalf("dashboard snapshot = %+v, want one cancelled row", snap)
	}
}
