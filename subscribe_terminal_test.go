package qpi

import (
	"context"
	"errors"
	"testing"

	"qpi/internal/exec"
	"qpi/internal/vfs"
)

// Terminal-snapshot delivery on the unhappy paths: Subscribe must always
// end with the terminal snapshot and a closed channel, whether the query
// was cancelled mid-flight or died on an execution error — and late
// subscribers must still receive that terminal state.

func TestSubscribeTerminalOnCancellation(t *testing.T) {
	e := obsEngine(t, 12000)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	sub := q.Subscribe()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var last Report
	n := 0
	for rep := range sub {
		last = rep
		n++
	}
	if n == 0 {
		t.Fatal("subscription closed without a terminal snapshot")
	}
	if last.State != "cancelled" {
		t.Errorf("terminal snapshot state = %q, want cancelled", last.State)
	}
	if last.Progress < 0 || last.Progress > 1 {
		t.Errorf("terminal snapshot progress = %g outside [0,1]", last.Progress)
	}

	// A subscription taken after the cancellation sees exactly the
	// terminal snapshot, already closed.
	late := q.Subscribe()
	rep, ok := <-late
	if !ok || rep.State != "cancelled" {
		t.Fatalf("late subscription after cancel: %+v, %v", rep.Status, ok)
	}
	if _, ok := <-late; ok {
		t.Error("late subscription not closed after terminal snapshot")
	}
}

func TestSubscribeTerminalOnFailure(t *testing.T) {
	e := obsEngine(t, 8000)
	// A tiny budget forces the join to spill; a fault filesystem makes
	// the very first spill write fail, so the run dies mid-build.
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k",
		WithMemoryBudget(256))
	fs := vfs.NewFaultFS(nil).FailAt(vfs.OpWrite, 1)
	injected := 0
	exec.Walk(q.root, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			j.SetSpillFS(fs)
			injected++
		}
	})
	if injected == 0 {
		t.Fatal("no hash join found to inject faults into")
	}
	sub := q.Subscribe()
	if _, err := q.Run(nil); err == nil {
		t.Fatal("run succeeded despite injected spill-write failure")
	}
	var last Report
	n := 0
	for rep := range sub {
		last = rep
		n++
	}
	if n == 0 {
		t.Fatal("subscription closed without a terminal snapshot")
	}
	if last.State != "failed" {
		t.Errorf("terminal snapshot state = %q, want failed", last.State)
	}

	late := q.Subscribe()
	rep, ok := <-late
	if !ok || rep.State != "failed" {
		t.Fatalf("late subscription after failure: %+v, %v", rep.Status, ok)
	}
	if _, ok := <-late; ok {
		t.Error("late subscription not closed after terminal snapshot")
	}
}
