package qpi

import (
	"strings"
	"sync"
	"testing"

	"qpi/internal/vfs"
)

func TestPrepareValidatesAndDescribes(t *testing.T) {
	e := testEngine(t)
	prep, err := e.Prepare("SELECT r.k FROM r JOIN s ON r.k = s.k WHERE r.k < 10")
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.Columns(); len(got) != 1 || got[0] != "k" {
		t.Errorf("Columns() = %v, want [k]", got)
	}
	if !strings.Contains(prep.Explain(), "HashJoin") {
		t.Errorf("Explain() = %q, want a HashJoin plan", prep.Explain())
	}
	if prep.SQL() == "" || !strings.Contains(prep.String(), "catalog v") {
		t.Errorf("SQL/String = %q / %q", prep.SQL(), prep.String())
	}

	// Errors surface at prepare time, not first execution.
	if _, err := e.Prepare("SELECT nope FROM r"); err == nil {
		t.Error("unknown column not caught at prepare time")
	}
	if _, err := e.Prepare("FROM WHERE"); err == nil {
		t.Error("parse error not caught at prepare time")
	}
}

func TestPreparedQueriesAreIndependent(t *testing.T) {
	e := testEngine(t)
	prep, err := e.Prepare("SELECT COUNT(*) c FROM r JOIN s ON r.k = s.k")
	if err != nil {
		t.Fatal(err)
	}
	// Each NewQuery is a fresh single-use execution; results agree and
	// concurrent executions of one handle are safe.
	var want int64 = -1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := prep.NewQuery()
			if err != nil {
				t.Error(err)
				return
			}
			rows, err := q.RowsContext(nil)
			if err != nil {
				t.Error(err)
				return
			}
			got := rows[0][0].(int64)
			mu.Lock()
			defer mu.Unlock()
			if want == -1 {
				want = got
			} else if got != want {
				t.Errorf("count = %d, earlier execution said %d", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestPreparedStalenessTracksCatalog(t *testing.T) {
	e := testEngine(t)
	prep, err := e.Prepare("SELECT COUNT(*) c FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if prep.Stale() {
		t.Fatal("fresh handle reports stale")
	}
	v0 := e.CatalogVersion()
	if prep.CatalogVersion() != v0 {
		t.Fatalf("prepared at v%d, engine at v%d", prep.CatalogVersion(), v0)
	}

	// Each mutation kind bumps the version exactly once.
	if err := e.Analyze("r"); err != nil {
		t.Fatal(err)
	}
	if e.CatalogVersion() != v0+1 {
		t.Errorf("Analyze: version %d, want %d", e.CatalogVersion(), v0+1)
	}
	tab, err := e.CreateTable("t", ColumnDef{Name: "x", Type: "int"})
	if err != nil {
		t.Fatal(err)
	}
	if e.CatalogVersion() != v0+2 {
		t.Errorf("CreateTable: version %d, want %d", e.CatalogVersion(), v0+2)
	}
	if err := tab.Insert(7); err != nil {
		t.Fatal(err)
	}
	if e.CatalogVersion() != v0+3 {
		t.Errorf("Insert: version %d, want %d", e.CatalogVersion(), v0+3)
	}
	if !prep.Stale() {
		t.Error("handle not stale after catalog changes")
	}

	// Stale handles still execute (against the current catalog).
	q, err := prep.NewQuery()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithSpillFSRoutesSpillIO(t *testing.T) {
	e := testEngine(t)
	fault := vfs.NewFaultFS(nil)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k ORDER BY k",
		WithMemoryBudget(8*1024), WithSpillFS(fault))
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("join returned no rows")
	}
	if fault.Count(vfs.OpCreate) == 0 {
		t.Fatal("spill I/O did not go through the injected FS")
	}
	if open := fault.OpenFiles(); open != 0 {
		t.Errorf("%d spill files still open after completion", open)
	}
}
