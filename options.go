package qpi

import (
	"qpi/internal/obs"
)

// Tracer collects the execution event stream — operator phase spans,
// estimator refinements, source transitions and pipeline lifecycle marks
// — when bound to a run with WithTrace. A nil *Tracer is a valid no-op
// sink; the hot path never pays more than a nil check for it.
type Tracer = obs.Tracer

// TraceEvent is one entry of a tracer's event stream.
type TraceEvent = obs.Event

// TraceEventKind discriminates TraceEvent entries (span begin/end, mark,
// estimate refinement, source transition).
type TraceEventKind = obs.EventKind

// Trace event kinds.
const (
	TraceSpanBegin        = obs.SpanBegin
	TraceSpanEnd          = obs.SpanEnd
	TraceMark             = obs.Mark
	TraceEstimateRefined  = obs.EstimateRefined
	TraceSourceTransition = obs.SourceTransition
)

// NewTracer creates an empty tracer whose event timestamps are relative
// to this call.
func NewTracer() *Tracer { return obs.New() }

// RunOption configures one execution (Run or Start). Options compose:
// progress callback, tracing and metrics can all be active at once.
type RunOption func(*runCfg)

type runCfg struct {
	onProgress func(Report)
	every      int64
	everySet   bool
	tracer     *obs.Tracer
	metrics    *Metrics
	reopt      *ReoptOptions
}

// defaultEvery is the work-based publication interval (tuples moved
// anywhere in the plan) used when no option picks one.
const defaultEvery = 4096

func newRunCfg(opts []RunOption) runCfg {
	cfg := runCfg{every: defaultEvery}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.every < 1 {
		cfg.every = 1
	}
	return cfg
}

// WithProgress invokes onProgress with a progress snapshot approximately
// every `every` units of work (tuples moved anywhere in the plan), plus
// once with the terminal snapshot when execution finishes. every < 1
// defaults to every unit of work.
func WithProgress(onProgress func(Report), every int64) RunOption {
	return func(c *runCfg) {
		c.onProgress = onProgress
		if !c.everySet {
			c.every = every
			if c.every < 1 {
				c.every = 1
			}
		}
	}
}

// WithInterval sets the work-based publication interval for Subscribe
// channels and metrics destinations (default 4096 units of work). It
// overrides the interval given to WithProgress.
func WithInterval(every int64) RunOption {
	return func(c *runCfg) {
		c.every = every
		c.everySet = true
	}
}

// WithTrace binds tr to the run: every operator emits phase spans
// (build, probe, partition passes, sort, merge, ...), the online
// estimators emit refinement and source-transition events, and the
// monitor emits pipeline lifecycle marks. A nil tracer disables tracing
// at effectively zero cost.
func WithTrace(tr *Tracer) RunOption {
	return func(c *runCfg) { c.tracer = tr }
}

// WithMetrics updates *dst with a metrics snapshot at every publication
// interval and once more when execution finishes. dst is written on the
// execution goroutine; read it after the run completes (or call
// Query.Metrics(), which is safe at any time, for live values).
func WithMetrics(dst *Metrics) RunOption {
	return func(c *runCfg) { c.metrics = dst }
}

// ReoptOptions tunes mid-query re-optimization (WithReoptimization).
// The zero value picks the production defaults.
type ReoptOptions struct {
	// MinGain is the minimum modeled relative cost improvement a
	// restructuring must promise before it is applied (default 0.05).
	MinGain float64
	// Force evaluates at every pipeline boundary and applies the best
	// legal restructuring regardless of gain — the setting differential
	// test suites use to guarantee re-optimization actually fires.
	Force bool
	// ScoutRowLimit caps the base-table size the re-optimizer's scout
	// pass will sketch; larger inputs leave the segment untouched.
	// 0 keeps the default (about one million rows), negative disables
	// the limit.
	ScoutRowLimit int
}

// WithReoptimization enables sketch-backed mid-query re-optimization
// for the run: Fast-AGMS join-key sketches ride the grace-join
// partition passes, and when a chain estimator converges (or a
// differential harness forces it), the not-yet-started join segment
// below the next pipeline boundary is re-costed and — under an
// explicit started/unstarted barrier — re-ordered or side-swapped.
// Output rows are unaffected; applied changes appear in
// Query.PlanChanges, the qpi_reopt_* metrics and the trace stream.
// Requires the default (Once) or Robust estimator mode: the trigger is
// the online framework's convergence signal.
func WithReoptimization(o ReoptOptions) RunOption {
	return func(c *runCfg) { c.reopt = &o }
}
