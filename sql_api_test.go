package qpi

import (
	"math"
	"strings"
	"testing"
)

func sqlEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.MustLoadTPCH(TPCHConfig{SF: 0.002, Seed: 5})
	return e
}

func TestSQLQueryBasics(t *testing.T) {
	e := sqlEngine(t)
	q, err := e.Query("SELECT custkey FROM customer WHERE custkey <= 3 ORDER BY custkey")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].(int64) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLJoinWithProgress(t *testing.T) {
	e := sqlEngine(t)
	q := e.MustQuery(`SELECT o.orderkey FROM orders o
		JOIN customer c ON o.custkey = c.custkey`)
	var final Report
	n, err := q.Run(nil, WithProgress(func(r Report) { final = r }, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("join empty")
	}
	if math.Abs(final.Progress-1) > 1e-9 {
		t.Errorf("final progress = %g", final.Progress)
	}
	// The join must carry a converged once estimate.
	found := false
	for _, est := range q.Estimates() {
		if strings.HasPrefix(est.Operator, "HashJoin") {
			found = true
			if est.Source != "once-exact" {
				t.Errorf("join source = %q", est.Source)
			}
		}
	}
	if !found {
		t.Error("no hash join in plan")
	}
}

func TestSQLAggregates(t *testing.T) {
	e := sqlEngine(t)
	q := e.MustQuery("SELECT COUNT(*) c FROM lineitem")
	rows, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := e.TableRows("lineitem")
	if rows[0][0].(int64) != int64(want) {
		t.Errorf("count = %v, want %d", rows[0][0], want)
	}
}

func TestSQLGroupByEstimation(t *testing.T) {
	e := sqlEngine(t)
	q := e.MustQuery("SELECT custkey, COUNT(*) c FROM orders GROUP BY custkey")
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := q.Estimates()[0]
	if agg.Estimate != float64(n) {
		t.Errorf("agg estimate %g != %d groups", agg.Estimate, n)
	}
}

func TestSQLSemiAntiJoins(t *testing.T) {
	e := sqlEngine(t)
	semi := e.MustQuery("SELECT custkey FROM customer SEMI JOIN orders ON orders.custkey = customer.custkey")
	anti := e.MustQuery("SELECT custkey FROM customer ANTI JOIN orders ON orders.custkey = customer.custkey")
	ns, err := semi.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	na, err := anti.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := e.TableRows("customer")
	if ns+na != int64(total) {
		t.Errorf("semi %d + anti %d != customers %d", ns, na, total)
	}
}

func TestSQLErrors(t *testing.T) {
	e := sqlEngine(t)
	for _, q := range []string{
		"SELEC x",
		"SELECT x FROM nope",
		"SELECT nope FROM customer",
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestSQLWithSamplingAndModes(t *testing.T) {
	e := sqlEngine(t)
	for _, m := range []EstimatorMode{Once, DNE, Byte} {
		q, err := e.Query(
			"SELECT o.orderkey FROM orders o JOIN customer c ON o.custkey = c.custkey",
			WithMode(m), WithSampling(0.1, 3))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Run(nil); err != nil {
			t.Fatal(err)
		}
		if p := q.Progress(); math.Abs(p-1) > 1e-9 {
			t.Errorf("mode %v final progress %g", m, p)
		}
	}
}

func TestMustQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuery did not panic")
		}
	}()
	sqlEngine(t).MustQuery("not sql")
}
