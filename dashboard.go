package qpi

import (
	"qpi/internal/progress"
)

// Dashboard tracks the progress of several queries at once (the
// multi-query extension of Luo et al. [19] the paper cites): register
// each compiled query under a label and poll Snapshot/Overall while they
// execute.
type Dashboard struct {
	reg *progress.Registry
}

// NewDashboard creates an empty dashboard.
func NewDashboard() *Dashboard {
	return &Dashboard{reg: progress.NewRegistry()}
}

// Register adds a query under a unique label.
func (d *Dashboard) Register(label string, q *Query) error {
	return d.reg.Register(label, q.monitor)
}

// Unregister removes a query.
func (d *Dashboard) Unregister(label string) { d.reg.Unregister(label) }

// QueryStatus is one query's row in a dashboard snapshot.
type QueryStatus struct {
	Label    string
	Progress float64
	C, T     float64
	Done     bool
	// State is "running", "done", "cancelled" or "failed"; cancelled and
	// failed queries are distinguishable from merely stalled ones.
	State string
}

// Snapshot reports every registered query's progress, in registration
// order.
func (d *Dashboard) Snapshot() []QueryStatus {
	snap := d.reg.Snapshot()
	out := make([]QueryStatus, len(snap))
	for i, s := range snap {
		out[i] = QueryStatus{
			Label: s.Label, Progress: s.Progress, C: s.C, T: s.T,
			Done: s.Done, State: s.State.String(),
		}
	}
	return out
}

// Overall aggregates all queries under the gnm model: total work done
// over total expected, across the workload.
func (d *Dashboard) Overall() float64 { return d.reg.OverallProgress() }

// String renders a dashboard-style table, sorted by progress.
func (d *Dashboard) String() string { return d.reg.String() }
