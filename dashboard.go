package qpi

import (
	"sync"

	"qpi/internal/progress"
)

// Dashboard tracks the progress of several queries at once (the
// multi-query extension of Luo et al. [19] the paper cites): register
// each compiled query under a label and poll Snapshot/Overall while they
// execute, or expose the registry over HTTP with Serve.
type Dashboard struct {
	reg *progress.Registry

	mu      sync.Mutex
	queries map[string]*Query
	order   []string
}

// NewDashboard creates an empty dashboard.
func NewDashboard() *Dashboard {
	return &Dashboard{reg: progress.NewRegistry(), queries: map[string]*Query{}}
}

// Register adds a query under a unique label.
func (d *Dashboard) Register(label string, q *Query) error {
	if err := d.reg.Register(label, q.monitor); err != nil {
		return err
	}
	d.mu.Lock()
	d.queries[label] = q
	d.order = append(d.order, label)
	d.mu.Unlock()
	return nil
}

// Unregister removes a query.
func (d *Dashboard) Unregister(label string) {
	d.reg.Unregister(label)
	d.mu.Lock()
	delete(d.queries, label)
	for i, l := range d.order {
		if l == label {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
}

// queriesSnapshot returns the registered labels and queries in
// registration order.
func (d *Dashboard) queriesSnapshot() ([]string, []*Query) {
	d.mu.Lock()
	defer d.mu.Unlock()
	labels := make([]string, len(d.order))
	copy(labels, d.order)
	qs := make([]*Query, len(labels))
	for i, l := range labels {
		qs[i] = d.queries[l]
	}
	return labels, qs
}

// QueryStatus is one query's row in a dashboard snapshot. State
// distinguishes cancelled and failed queries from merely stalled ones.
type QueryStatus struct {
	Label string
	Status
	Done bool
}

// Snapshot reports every registered query's progress, in registration
// order.
func (d *Dashboard) Snapshot() []QueryStatus {
	snap := d.reg.Snapshot()
	out := make([]QueryStatus, len(snap))
	for i, s := range snap {
		out[i] = QueryStatus{
			Label:  s.Label,
			Status: statusOf(s.Progress, s.C, s.T, s.State),
			Done:   s.Done,
		}
	}
	return out
}

// Overall aggregates all queries under the gnm model: total work done
// over total expected, across the workload.
func (d *Dashboard) Overall() float64 { return d.reg.OverallProgress() }

// String renders a dashboard-style table, sorted by progress.
func (d *Dashboard) String() string { return d.reg.String() }
