package qpi

import (
	"context"
	"testing"
)

// Tests for the public mid-query re-optimization surface: the
// WithReoptimization run option, the qpi_reopt_* metric counters, and
// the compile-time pinning of operator labels that keeps EstimateOf
// resolving across a restructure.

// reoptEngine registers the four-table fixture: a 200-row bottom
// stream, a 3000-row hot build, a 100-row selective build and a small
// anchor build.
func reoptEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.MustCreateSkewedTable("a0", 200, 1,
		SkewedColumn{Name: "k", Domain: 100, Zipf: 0, PermSeed: 1})
	e.MustCreateSkewedTable("b0", 3000, 2,
		SkewedColumn{Name: "k", Domain: 10, Zipf: 0, PermSeed: 2})
	e.MustCreateSkewedTable("b1", 100, 3,
		SkewedColumn{Name: "k", Domain: 100, Zipf: 0, PermSeed: 3})
	e.MustCreateSkewedTable("b2", 50, 4,
		SkewedColumn{Name: "k", Domain: 50, Zipf: 0, PermSeed: 4})
	return e
}

// reoptChain builds b2 ⋈ (b1 ⋈ (b0 ⋈ a0)), all keyed on a0.k — the hot
// b0 join sits at the bottom of the segment, the worst position.
func reoptChain(t *testing.T, e *Engine, opts ...CompileOption) *Query {
	t.Helper()
	scan := func(name string) *Node {
		n, err := e.Scan(name, "")
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	j := HashJoin(scan("b0"), scan("a0"), Col("b0", "k"), Col("a0", "k"))
	j = HashJoin(scan("b1"), j, Col("b1", "k"), Col("a0", "k"))
	j = HashJoin(scan("b2"), j, Col("b2", "k"), Col("a0", "k"))
	q, err := e.Compile(j, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestWithReoptimizationRestructures(t *testing.T) {
	e := reoptEngine(t)
	baseline, err := reoptChain(t, e).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	q := reoptChain(t, e, WithMode(Robust))
	var m Metrics
	tr := NewTracer()
	n, err := q.Run(context.Background(),
		WithReoptimization(ReoptOptions{Force: true}),
		WithTrace(tr), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if n != baseline {
		t.Fatalf("restructured run emitted %d rows, baseline %d", n, baseline)
	}

	changes := q.PlanChanges()
	if len(changes) == 0 {
		t.Fatal("forced re-optimization applied no plan change")
	}
	for _, c := range changes {
		if !c.AllUnstarted {
			t.Errorf("plan change without barrier witness: %+v", c)
		}
	}
	if m.ReoptApplied != int64(len(changes)) {
		t.Errorf("ReoptApplied = %d, changes = %d", m.ReoptApplied, len(changes))
	}
	if m.ReoptConsidered == 0 || m.ReoptScouts == 0 {
		t.Errorf("reopt counters empty: %+v", m)
	}
	if rep := q.Report(); rep.State != "done" || rep.Progress != 1 {
		t.Errorf("terminal report = %+v, want done at progress 1", rep.Status)
	}
	reoptMarks := 0
	for _, ev := range tr.Events() {
		if ev.Kind == TraceMark && ev.Phase == "reopt" {
			reoptMarks++
		}
	}
	if reoptMarks == 0 {
		t.Error("no reopt mark in the trace stream")
	}
}

func TestWithReoptimizationWithoutEstimatorsIsInert(t *testing.T) {
	e := reoptEngine(t)
	q := reoptChain(t, e, WithoutEstimators())
	if _, err := q.Run(context.Background(),
		WithReoptimization(ReoptOptions{Force: true})); err != nil {
		t.Fatal(err)
	}
	if got := q.PlanChanges(); got != nil {
		t.Errorf("re-optimization ran without the estimator framework: %v", got)
	}
	if st := q.ReoptStats(); st.Considered != 0 {
		t.Errorf("ReoptStats = %+v, want zero", st)
	}
}

// TestEstimateOfStableAcrossReopt is the regression test for label
// identity: a build/probe side swap changes a join's live Name()
// ("HashJoin(b0.k = a0.k)" becomes "HashJoin(a0.k = b0.k)"), so
// Estimates and EstimateOf must resolve against labels pinned at
// compile time, not recomputed mid-run.
func TestEstimateOfStableAcrossReopt(t *testing.T) {
	e := reoptEngine(t)
	scan := func(name string) *Node {
		n, err := e.Scan(name, "")
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Two-join chain: the segment is only the hot b0 join, whose
	// 3000-row build dwarfs the 200-row bottom stream — the forced
	// re-optimizer's only legal move is the side swap.
	j := HashJoin(scan("b0"), scan("a0"), Col("b0", "k"), Col("a0", "k"))
	j = HashJoin(scan("b2"), j, Col("b2", "k"), Col("a0", "k"))
	q, err := e.Compile(j)
	if err != nil {
		t.Fatal(err)
	}
	const label = "HashJoin(b0.k = a0.k)"
	if _, ok := q.EstimateOf(label); !ok {
		t.Fatalf("EstimateOf(%q) unresolved before the run", label)
	}
	if _, err := q.Run(context.Background(),
		WithReoptimization(ReoptOptions{Force: true})); err != nil {
		t.Fatal(err)
	}
	changes := q.PlanChanges()
	if len(changes) != 1 || !changes[0].Swapped {
		t.Fatalf("PlanChanges = %+v, want one side swap", changes)
	}
	est, ok := q.EstimateOf(label)
	if !ok {
		t.Fatalf("EstimateOf(%q) lost after the side swap renamed the join", label)
	}
	if est.Emitted == 0 || !est.Done {
		t.Errorf("swapped join estimate = %+v, want done with output", est)
	}
	// The flipped live label must NOT have leaked into the snapshot.
	for _, oe := range q.Estimates() {
		if oe.Operator == "HashJoin(a0.k = b0.k)" {
			t.Errorf("live (flipped) label leaked into Estimates: %q", oe.Operator)
		}
	}
}
