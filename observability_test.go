package qpi

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"qpi/internal/exec"
)

// obsEngine builds two skewed tables with a join column k and a grouping
// column g, so a join + group-by exercises chain, push-down and chooser
// estimators.
func obsEngine(t testing.TB, rows int) *Engine {
	t.Helper()
	e := New()
	e.MustCreateSkewedTable("r", rows, 1,
		SkewedColumn{Name: "k", Domain: 200, Zipf: 1, PermSeed: 11},
		SkewedColumn{Name: "g", Domain: 40, Zipf: 1.2, PermSeed: 7})
	e.MustCreateSkewedTable("s", rows+rows/3, 2,
		SkewedColumn{Name: "k", Domain: 200, Zipf: 1, PermSeed: 22})
	return e
}

// spanSeq filters a trace down to its span events as "kind op phase"
// strings, for golden comparisons.
func spanSeq(evs []TraceEvent) []string {
	var out []string
	for _, e := range evs {
		if e.Kind == TraceSpanBegin || e.Kind == TraceSpanEnd {
			out = append(out, fmt.Sprintf("%s %s %s", e.Kind, e.Op, e.Phase))
		}
	}
	return out
}

// TestTraceCoversJoinGroupBy is the acceptance scenario: a TPC-H-style
// join + group-by under WithTrace must produce a replayable event stream
// covering every operator phase and the estimator source transitions.
func TestTraceCoversJoinGroupBy(t *testing.T) {
	e := obsEngine(t, 12000)
	q := e.MustQuery("SELECT r.g, COUNT(*) c FROM r JOIN s ON r.k = s.k GROUP BY r.g")
	tr := NewTracer()
	if _, err := q.Run(nil, WithTrace(tr), WithInterval(2000)); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}

	// Span balance: every begin has a matching end, never nested per
	// (op, phase).
	open := map[string]int{}
	for _, ev := range evs {
		key := ev.Op + "/" + ev.Phase
		switch ev.Kind {
		case TraceSpanBegin:
			if open[key]++; open[key] > 1 {
				t.Errorf("span %q begun twice without end", key)
			}
		case TraceSpanEnd:
			if open[key]--; open[key] < 0 {
				t.Errorf("span %q ended without begin", key)
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("span %q left open", key)
		}
	}

	// Phase coverage across the plan's operator kinds.
	phases := map[string]bool{}
	refines, transitions := 0, 0
	sawOnceExact, sawPipeline := false, false
	for _, ev := range evs {
		switch ev.Kind {
		case TraceSpanBegin:
			phases[ev.Phase] = true
		case TraceEstimateRefined:
			refines++
		case TraceSourceTransition:
			transitions++
			if ev.To == "once-exact" {
				sawOnceExact = true
			}
		case TraceMark:
			if strings.HasPrefix(ev.Op, "pipeline[") {
				sawPipeline = true
			}
		}
	}
	for _, want := range []string{"scan", "build", "probe", "input", "emit", "join[0]"} {
		if !phases[want] {
			t.Errorf("no span for phase %q\n%s", want, tr.Dump())
		}
	}
	if refines == 0 {
		t.Error("no EstimateRefined events")
	}
	if transitions == 0 {
		t.Error("no SourceTransition events")
	}
	if !sawOnceExact {
		t.Error("no transition to once-exact (chain convergence)")
	}
	if !sawPipeline {
		t.Error("no pipeline lifecycle marks")
	}
}

// TestGoldenTraceTupleVsBatch pins that batch-at-a-time execution emits
// the same span sequence — same phases, same order — as tuple-at-a-time.
func TestGoldenTraceTupleVsBatch(t *testing.T) {
	run := func(opts ...CompileOption) []string {
		e := obsEngine(t, 6000)
		q := e.MustQuery("SELECT r.g, COUNT(*) c FROM r JOIN s ON r.k = s.k GROUP BY r.g", opts...)
		tr := NewTracer()
		if _, err := q.Run(nil, WithTrace(tr)); err != nil {
			t.Fatal(err)
		}
		return spanSeq(tr.Events())
	}
	tuple := run()
	batch := run(WithBatchExecution(1))
	if len(tuple) == 0 {
		t.Fatal("empty tuple-mode trace")
	}
	if len(tuple) != len(batch) {
		t.Fatalf("span count: tuple %d vs batch %d\ntuple: %v\nbatch: %v",
			len(tuple), len(batch), tuple, batch)
	}
	for i := range tuple {
		if tuple[i] != batch[i] {
			t.Fatalf("span %d: tuple %q vs batch %q", i, tuple[i], batch[i])
		}
	}
}

// TestTraceSpillCounters: under a memory budget the grace join and
// external sort must emit spill marks with byte counts, and Metrics must
// aggregate them.
func TestTraceSpillCounters(t *testing.T) {
	e := obsEngine(t, 12000)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k ORDER BY r.k",
		WithMemoryBudget(32*1024))
	tr := NewTracer()
	var m Metrics
	if _, err := q.Run(nil, WithTrace(tr), WithMetrics(&m)); err != nil {
		t.Fatal(err)
	}
	spillMarks := 0
	for _, ev := range tr.Events() {
		if ev.Kind == TraceMark && strings.HasPrefix(ev.Phase, "spill") {
			spillMarks++
			if ev.Bytes <= 0 {
				t.Errorf("spill mark without bytes: %+v", ev)
			}
		}
	}
	if spillMarks == 0 {
		t.Fatal("no spill marks under 32KiB budget")
	}
	if m.SpillFiles <= 0 || m.SpillBytes <= 0 {
		t.Errorf("metrics spill counters: files=%d bytes=%d", m.SpillFiles, m.SpillBytes)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	e := obsEngine(t, 6000)
	q := e.MustQuery("SELECT r.g, COUNT(*) c FROM r JOIN s ON r.k = s.k GROUP BY r.g",
		WithBatchExecution(1))
	var m Metrics
	n, err := q.Run(nil, WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("query produced nothing")
	}
	if m.State != "done" || m.Progress < 0.999 {
		t.Errorf("terminal metrics status = %+v", m.Status)
	}
	if m.Tuples <= n {
		t.Errorf("Tuples = %d, want > output rows %d", m.Tuples, n)
	}
	if m.Batches == 0 {
		t.Error("Batches = 0 in batch mode")
	}
	if m.EstimatorRecomputes == 0 {
		t.Error("EstimatorRecomputes = 0 with estimators attached")
	}
	if m.HistogramProbes == 0 {
		t.Error("HistogramProbes = 0 with a chain estimator attached")
	}
	if len(m.Pipelines) == 0 {
		t.Error("no per-pipeline gauges")
	}
}

func TestEstimateOfLabels(t *testing.T) {
	e := obsEngine(t, 3000)
	q := e.MustQuery("SELECT r.g, COUNT(*) c FROM r JOIN s ON r.k = s.k GROUP BY r.g")
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}
	ests := q.Estimates()
	// Exact label resolution for every operator in the plan.
	for _, want := range ests {
		got, ok := q.EstimateOf(want.Operator)
		if !ok || got.Operator != want.Operator {
			t.Errorf("EstimateOf(%q) = %+v, %v", want.Operator, got, ok)
		}
	}
	// Unique substring.
	if got, ok := q.EstimateOf("HashJoin"); !ok || !strings.Contains(got.Operator, "HashJoin") {
		t.Errorf("substring resolution failed: %+v, %v", got, ok)
	}
	// Ambiguous substring (two scans).
	if _, ok := q.EstimateOf("Scan"); ok {
		t.Error("ambiguous label resolved")
	}
	// Unknown.
	if _, ok := q.EstimateOf("NoSuchOperator"); ok {
		t.Error("unknown label resolved")
	}
	// Empty string addresses the root.
	root, ok := q.EstimateOf("")
	if !ok || root.Operator != ests[0].Operator {
		t.Errorf(`EstimateOf("") = %+v, %v`, root, ok)
	}
}

// TestSubscribeStream: a drained subscription sees progress advance and
// ends with the terminal snapshot; the channel closes.
func TestSubscribeStream(t *testing.T) {
	e := obsEngine(t, 12000)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	sub := q.Subscribe()
	var reports []Report
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := range sub {
			reports = append(reports, rep)
		}
	}()
	if _, err := q.Run(nil, WithInterval(1000)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(reports) < 2 {
		t.Fatalf("only %d snapshots", len(reports))
	}
	last := reports[len(reports)-1]
	if last.State != "done" || last.Progress < 0.999 {
		t.Errorf("terminal snapshot = %+v", last.Status)
	}
}

// TestSubscribeDropOldest: an undrained subscription must not block the
// executor; its buffer keeps the freshest snapshots and always ends with
// the terminal one.
func TestSubscribeDropOldest(t *testing.T) {
	e := obsEngine(t, 12000)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	sub := q.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := q.Run(nil, WithInterval(200)); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("executor blocked on a full subscription")
	}
	var last Report
	n := 0
	for rep := range sub {
		last = rep
		n++
	}
	if n > subscribeBuffer {
		t.Errorf("drained %d > buffer %d", n, subscribeBuffer)
	}
	if last.State != "done" {
		t.Errorf("terminal snapshot dropped; last = %+v", last.Status)
	}
}

// TestSubscribeAfterFinish: a late subscription receives exactly the
// terminal snapshot, already closed.
func TestSubscribeAfterFinish(t *testing.T) {
	e := obsEngine(t, 3000)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}
	sub := q.Subscribe()
	rep, ok := <-sub
	if !ok || rep.State != "done" {
		t.Fatalf("late subscription: %+v, %v", rep.Status, ok)
	}
	if _, ok := <-sub; ok {
		t.Error("late subscription not closed after terminal snapshot")
	}
}

// TestServeEndpoints scrapes a served dashboard while a query is
// registered.
func TestServeEndpoints(t *testing.T) {
	e := obsEngine(t, 3000)
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	d := NewDashboard()
	if err := d.Register("join-query", q); err != nil {
		t.Fatal(err)
	}
	srv, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`qpi_query_progress{query="join-query"} 1`,
		`qpi_query_tuples_total{query="join-query"}`,
		`qpi_query_estimator_recomputes_total{query="join-query"}`,
		`qpi_pipeline_work_done{query="join-query",pipeline="0"}`,
		"qpi_overall_progress 1",
		"# TYPE qpi_query_spill_bytes_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	dash := get("/dashboard")
	for _, want := range []string{`"join-query"`, `"overall":1`, `"State":"done"`} {
		if !strings.Contains(dash, want) {
			t.Errorf("/dashboard missing %q:\n%s", want, dash)
		}
	}

	if vars := get("/debug/vars"); !strings.Contains(vars, `"qpi"`) {
		t.Error("/debug/vars missing qpi var")
	}
}

// TestConcurrentSubscribeAndScrape is the -race scenario: a running
// query with a live Subscribe consumer, HTTP scrapes, and programmatic
// Metrics/Estimates readers all at once.
func TestConcurrentSubscribeAndScrape(t *testing.T) {
	e := obsEngine(t, 20000)
	q := e.MustQuery("SELECT r.g, COUNT(*) c FROM r JOIN s ON r.k = s.k GROUP BY r.g")
	d := NewDashboard()
	if err := d.Register("race-query", q); err != nil {
		t.Fatal(err)
	}
	srv, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub := q.Subscribe()
	tr := NewTracer()
	r, err := q.Start(nil, WithTrace(tr), WithInterval(500))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // subscription consumer
		defer wg.Done()
		for range sub {
		}
	}()
	stop := make(chan struct{})
	for i := 0; i < 3; i++ { // concurrent scrapers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + srv.Addr() + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				_ = q.Metrics()
				_ = q.Estimates()
				_ = tr.Len()
				_, _ = r.ETA()
			}
		}()
	}
	n, err := r.Wait()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("query produced nothing")
	}
	if rep := r.Report(); rep.State != "done" {
		t.Errorf("terminal state = %q", rep.State)
	}
}

// TestNoopTracerOverheadGuard: with no tracer bound, the observability
// plumbing must cost <2% versus driving the same WithoutEstimators plan
// through the bare executor. Interleaved min-of-N timings with retries
// keep the guard stable on noisy machines.
func TestNoopTracerOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	e := New()
	e.MustCreateSkewedTable("r", 60000, 1,
		SkewedColumn{Name: "k", Domain: 4000, Zipf: 1, PermSeed: 11})
	e.MustCreateSkewedTable("s", 80000, 2,
		SkewedColumn{Name: "k", Domain: 4000, Zipf: 1, PermSeed: 22})
	build := func() *Query {
		return e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k", WithoutEstimators())
	}
	const rounds = 5
	for attempt := 1; ; attempt++ {
		var base, noop time.Duration
		base, noop = 1<<62, 1<<62
		for i := 0; i < rounds; i++ {
			qb := build()
			t0 := time.Now()
			if _, err := exec.Run(qb.root); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < base {
				base = d
			}
			qn := build()
			t0 = time.Now()
			if _, err := qn.Run(nil); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < noop {
				noop = d
			}
		}
		ratio := float64(noop) / float64(base)
		t.Logf("attempt %d: base=%v noop=%v ratio=%.4f", attempt, base, noop, ratio)
		if ratio < 1.02 {
			return
		}
		if attempt >= 4 {
			t.Fatalf("no-op observability overhead %.2f%% exceeds 2%%", 100*(ratio-1))
		}
	}
}
