package qpi

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/progress"
	"qpi/internal/sql"
	"qpi/internal/vfs"
)

// Query parses a SQL SELECT statement, plans it against the engine's
// catalog and compiles it with the online estimation framework attached.
//
// The supported SQL subset: SELECT with column/arithmetic projections and
// aggregates (COUNT/SUM/MIN/MAX/AVG), FROM with comma lists and
// INNER/LEFT/SEMI/ANTI/CROSS JOIN ... ON (including conjunctive
// multi-column conditions), WHERE with comparisons, AND/OR/NOT, BETWEEN,
// IN, IS [NOT] NULL, GROUP BY, HAVING, ORDER BY [ASC|DESC] and LIMIT.
// The planner builds left-deep hash join chains probing the largest
// input — the pipeline shape the paper's push-down estimation is
// designed for.
func (e *Engine) Query(query string, opts ...CompileOption) (*Query, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	root, err := sql.Plan(stmt, e.cat)
	if err != nil {
		return nil, err
	}
	return e.Compile(&Node{op: root, eng: e}, opts...)
}

// MustQuery is Query, panicking on error.
func (e *Engine) MustQuery(query string, opts ...CompileOption) *Query {
	q, err := e.Query(query, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// EstimatorMode selects how the progress monitor refines cardinalities of
// running operators.
type EstimatorMode int

// Estimator modes.
const (
	// Once is the paper's online framework (default).
	Once EstimatorMode = iota
	// DNE is the driver-node estimator baseline.
	DNE
	// Byte is the Luo et al. byte-count baseline.
	Byte
	// Robust blends the online framework with the dne and byte
	// refinements per operator, bounding the damage when any single
	// estimator is briefly wrong — the recommended mode alongside
	// mid-query re-optimization.
	Robust
)

// CompileOption customizes Compile.
type CompileOption func(*compileCfg)

type compileCfg struct {
	mode           EstimatorMode
	sampleFraction float64
	sampleSeed     int64
	noEstimators   bool
	memBudget      int64
	batchWorkers   int
	spillFS        vfs.FS
}

// WithMode selects the estimator mode (default Once).
func WithMode(m EstimatorMode) CompileOption {
	return func(c *compileCfg) { c.mode = m }
}

// WithSampling makes every table scan deliver a block-level random sample
// of the given fraction first (the paper's modified scans; §3, §5). The
// online estimators freeze their estimates at the sample punctuation.
func WithSampling(fraction float64, seed int64) CompileOption {
	return func(c *compileCfg) {
		c.sampleFraction = fraction
		c.sampleSeed = seed
	}
}

// WithoutEstimators compiles the plan without attaching any online
// estimators — the no-overhead baseline the paper's Tables 3 and 4
// compare against.
func WithoutEstimators() CompileOption {
	return func(c *compileCfg) { c.noEstimators = true }
}

// WithMemoryBudget caps the bytes each blocking operator (hash join
// partition buffers, sorts) may hold in memory; overflow spills to
// temporary files, like the engine the paper instrumented. 0 (the
// default) keeps everything in memory.
func WithMemoryBudget(bytes int64) CompileOption {
	return func(c *compileCfg) { c.memBudget = bytes }
}

// SpillFS is the filesystem surface spilling operators (grace hash-join
// partitions, external-sort runs) create their temporary files on. The
// zero value of the seam is the real filesystem; tests and servers
// inject instrumented implementations (fault injection, open-descriptor
// accounting) through WithSpillFS.
type SpillFS = vfs.FS

// WithSpillFS routes every spilling operator's temporary-file I/O
// through fs — the internal/vfs seam, exposed so service layers can
// account for (and tests can fault-inject) spill descriptors across a
// whole workload. nil keeps the real filesystem.
func WithSpillFS(fs SpillFS) CompileOption {
	return func(c *compileCfg) { c.spillFS = fs }
}

// WithBatchExecution switches the plan to batch-at-a-time execution:
// operators move ~1024-tuple batches per call, hash joins run their grace
// partition passes over whole batches with `workers` parallel scatter
// workers (capped at GOMAXPROCS; 1 = batched but serial), and the online
// estimators observe through per-worker histogram shards merged at the
// pass barriers. Results and converged estimates are identical to the
// default tuple-at-a-time mode; under a memory budget the passes stay
// serial so spill accounting is single-threaded. workers < 1 is treated
// as 1.
func WithBatchExecution(workers int) CompileOption {
	if workers < 1 {
		workers = 1
	}
	return func(c *compileCfg) { c.batchWorkers = workers }
}

// Query is an executable plan with progress monitoring. Plans are
// single-use: execute with Run, Rows, or Start exactly once.
type Query struct {
	root    exec.Operator
	monitor *progress.Monitor
	att     *core.Attachment
	cfg     compileCfg
	started atomic.Bool

	// labels pins each operator's EXPLAIN-style label at compile time.
	// Join labels are derived from live child schemas, so a mid-query
	// restructure would silently rename a swapped join; Estimates and
	// EstimateOf resolve against these stable identities instead.
	labels map[exec.Operator]string

	// reopt is the mid-query re-optimizer, installed per run by
	// WithReoptimization (nil otherwise).
	reopt *plan.Reoptimizer

	// Subscriber channels (Subscribe) receive progress snapshots from the
	// execution goroutine; final holds the terminal report once subsDone.
	subMu    sync.Mutex
	subs     []chan Report
	subsDone bool
	final    Report
}

// claim marks the single-use query as started; exactly one of the
// possibly concurrent Run/Rows/Start calls wins.
func (q *Query) claim() error {
	if !q.started.CompareAndSwap(false, true) {
		return fmt.Errorf("qpi: query already started")
	}
	return nil
}

// execRun drives a query's plan to completion (shared by Run and Start),
// through the batch path when batch execution was compiled in. The
// context is bound to every operator before Open, so cancellation or
// deadline expiry unwinds the plan within one batch of work; the monitor
// is left in the matching terminal state.
func execRun(ctx context.Context, q *Query) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.reopt != nil {
		q.reopt.SetContext(ctx)
	}
	exec.Bind(q.root, ctx)
	var n int64
	err := ctx.Err()
	if err == nil {
		if q.cfg.batchWorkers > 0 {
			n, err = exec.RunBatch(exec.AsBatch(q.root))
		} else {
			n, err = exec.Run(q.root)
		}
	}
	q.monitor.Finish(err)
	return n, err
}

// Compile seeds optimizer estimates, attaches the online estimation
// framework (unless disabled) and builds a progress monitor for the plan.
func (e *Engine) Compile(n *Node, opts ...CompileOption) (*Query, error) {
	if n == nil {
		return nil, fmt.Errorf("qpi: nil plan")
	}
	cfg := compileCfg{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sampleFraction < 0 || cfg.sampleFraction > 1 {
		return nil, fmt.Errorf("qpi: sample fraction %g out of [0,1]", cfg.sampleFraction)
	}
	if cfg.sampleFraction > 0 {
		exec.Walk(n.op, func(op exec.Operator) {
			if sc, ok := op.(*exec.Scan); ok {
				sc.SampleFraction = cfg.sampleFraction
				sc.Seed = cfg.sampleSeed
			}
		})
	}
	if cfg.memBudget > 0 {
		exec.Walk(n.op, func(op exec.Operator) {
			switch o := op.(type) {
			case *exec.HashJoin:
				o.SetMemoryBudget(cfg.memBudget)
			case *exec.Sort:
				o.SetMemoryBudget(cfg.memBudget)
			}
		})
	}
	if cfg.spillFS != nil {
		exec.Walk(n.op, func(op exec.Operator) {
			switch o := op.(type) {
			case *exec.HashJoin:
				o.SetSpillFS(cfg.spillFS)
			case *exec.Sort:
				o.SetSpillFS(cfg.spillFS)
			}
		})
	}
	if cfg.batchWorkers > 0 {
		// Before Attach, so the estimators see the batched joins and
		// install sharded batch hooks instead of per-tuple hooks.
		exec.Walk(n.op, func(op exec.Operator) {
			if j, ok := op.(*exec.HashJoin); ok {
				j.SetParallelism(cfg.batchWorkers)
			}
		})
	}
	plan.EstimateCardinalities(n.op, e.cat)
	q := &Query{root: n.op, cfg: cfg, labels: map[exec.Operator]string{}}
	if !cfg.noEstimators && (cfg.mode == Once || cfg.mode == Robust) {
		q.att = core.Attach(n.op)
	}
	var pmode progress.Mode
	switch cfg.mode {
	case DNE:
		pmode = progress.ModeDNE
	case Byte:
		pmode = progress.ModeByte
	case Robust:
		pmode = progress.ModeRobust
	default:
		pmode = progress.ModeOnce
	}
	q.monitor = progress.NewMonitorWith(n.op, pmode, q.att)
	exec.Walk(n.op, func(op exec.Operator) { q.labels[op] = op.Name() })
	return q, nil
}

// labelOf returns op's compile-time label, falling back to the live
// name for operators created after compilation (the re-optimizer's
// Reorder wrapper).
func (q *Query) labelOf(op exec.Operator) string {
	if l, ok := q.labels[op]; ok {
		return l
	}
	return op.Name()
}

// ProgressInterval returns a two-sided confidence interval (confidence
// alpha in (0,1), e.g. 0.95) around the progress estimate, derived from
// the online estimators' cardinality confidence intervals. Outside the
// default estimator mode it degenerates to the point estimate.
func (q *Query) ProgressInterval(alpha float64) (lo, hi float64) {
	return q.monitor.ProgressInterval(alpha)
}

// MustCompile is Compile, panicking on error.
func (e *Engine) MustCompile(n *Node, opts ...CompileOption) *Query {
	q, err := e.Compile(n, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Status is the progress core shared by every consumer-facing snapshot
// (Report, QueryStatus, Metrics): the gnm work fractions plus the query's
// lifecycle state.
type Status struct {
	// Progress is the gnm estimate C(Q)/T(Q) in [0,1].
	Progress float64
	// C is the number of getnext() calls observed so far; T the current
	// estimate of the total over the query's lifetime.
	C, T float64
	// State is the query's lifecycle state: "running" until execution
	// finishes, then "done", "cancelled" (context cancelled or deadline
	// expired) or "failed". A cancelled query's progress value freezes,
	// but its state makes the outcome explicit.
	State string
}

// Report is a point-in-time progress snapshot.
type Report struct {
	Status
	// Pipelines summarizes each pipeline: done / running / pending.
	Pipelines []PipelineStatus
}

// PipelineStatus summarizes one pipeline.
type PipelineStatus struct {
	ID      int
	Root    string
	C, T    float64
	Started bool
	Done    bool
}

// statusOf is the single conversion from the progress layer's counters
// to the public Status. Every consumer-facing snapshot — Report (and so
// Subscribe and WithProgress), Dashboard's QueryStatus rows and Metrics
// — goes through this one function, so they all speak the same type
// with the same state vocabulary.
func statusOf(progressFrac, c, t float64, state progress.State) Status {
	return Status{Progress: progressFrac, C: c, T: t, State: state.String()}
}

func toReport(r progress.Report) Report {
	out := Report{Status: statusOf(r.Progress, r.C, r.T, r.State)}
	for _, p := range r.Pipelines {
		out.Pipelines = append(out.Pipelines, PipelineStatus{
			ID: p.ID, Root: p.Root, C: p.C, T: p.T, Started: p.Started, Done: p.Done,
		})
	}
	return out
}

// Progress returns the current gnm progress estimate in [0,1].
func (q *Query) Progress() float64 { return q.monitor.Progress() }

// Report returns a full progress snapshot.
func (q *Query) Report() Report { return toReport(q.monitor.Report()) }

// Run executes the query to completion, discarding result rows, and
// returns the output row count. Observability is composed from options:
//
//	n, err := q.Run(ctx,
//	    qpi.WithProgress(func(r qpi.Report) { ... }, 10000),
//	    qpi.WithTrace(tracer),
//	    qpi.WithMetrics(&m))
//
// When ctx is cancelled or its deadline expires, execution stops within
// one batch of work, every operator unwinds via Close (releasing spill
// files and buffers), and the call returns ctx's error. The final
// progress report carries the terminal state ("done", "cancelled" or
// "failed") and is delivered to the progress callback and every
// Subscribe channel regardless of outcome. A nil ctx means
// context.Background().
func (q *Query) Run(ctx context.Context, opts ...RunOption) (int64, error) {
	if err := q.claim(); err != nil {
		return 0, err
	}
	cfg := newRunCfg(opts)
	q.installObservability(&cfg)
	n, err := execRun(ctx, q)
	q.finishRun(&cfg)
	return n, err
}

// installObservability wires the run options and subscribers into the
// plan: tracer binding across executor, estimators and monitor, plus a
// work-based ticker feeding the progress callback, Subscribe channels
// and the metrics destination. Called once, before execution.
func (q *Query) installObservability(cfg *runCfg) {
	if cfg.tracer != nil {
		exec.BindTracer(q.root, cfg.tracer)
		if q.att != nil {
			q.att.SetTracer(cfg.tracer)
		}
		q.monitor.BindTracer(cfg.tracer)
	}
	if cfg.reopt != nil && q.att != nil {
		rc := plan.DefaultReoptConfig()
		if cfg.reopt.MinGain > 0 {
			rc.MinGain = cfg.reopt.MinGain
		}
		rc.Force = cfg.reopt.Force
		switch {
		case cfg.reopt.ScoutRowLimit > 0:
			rc.ScoutRowLimit = cfg.reopt.ScoutRowLimit
		case cfg.reopt.ScoutRowLimit < 0:
			rc.ScoutRowLimit = 0
		}
		r := plan.NewReoptimizer(rc, q.att)
		r.SetSketches(core.AttachSketches(q.root))
		r.SetTracer(cfg.tracer)
		r.SetOnRestructure(q.monitor.Refresh)
		r.Install(q.root)
		q.reopt = r
	}
	q.subMu.Lock()
	hasSubs := len(q.subs) > 0
	q.subMu.Unlock()
	if cfg.onProgress == nil && cfg.metrics == nil && !hasSubs {
		return
	}
	progress.InstallTicker(q.root, cfg.every, func() {
		q.publishTick(cfg)
	})
}

// publishTick runs on the execution goroutine at ticker boundaries.
func (q *Query) publishTick(cfg *runCfg) {
	rep := q.Report()
	if cfg.onProgress != nil {
		cfg.onProgress(rep)
	}
	if cfg.metrics != nil {
		*cfg.metrics = q.Metrics()
	}
	q.publishSubscribers(rep)
}

// finishRun delivers the terminal snapshot to every consumer and closes
// the Subscribe channels.
func (q *Query) finishRun(cfg *runCfg) {
	rep := q.Report()
	if cfg.onProgress != nil {
		cfg.onProgress(rep)
	}
	if cfg.metrics != nil {
		*cfg.metrics = q.Metrics()
	}
	q.closeSubscribers(rep)
}

// Rows executes the query and materializes the results. Each row holds
// int64, float64, string, or nil values.
func (q *Query) Rows() ([][]any, error) {
	return q.RowsContext(context.Background())
}

// RowsContext is Rows bound to ctx; cancellation and deadline behaviour
// match Run.
func (q *Query) RowsContext(ctx context.Context) ([][]any, error) {
	if err := q.claim(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	exec.Bind(q.root, ctx)
	out, err := q.collectRows()
	q.monitor.Finish(err)
	q.closeSubscribers(q.Report())
	return out, err
}

func (q *Query) collectRows() ([][]any, error) {
	if err := q.root.Open(); err != nil {
		return nil, err
	}
	defer q.root.Close()
	var out [][]any
	for {
		t, err := q.root.Next()
		if err != nil {
			return out, err
		}
		if t == nil {
			return out, nil
		}
		row := make([]any, len(t))
		for i, v := range t {
			switch v.Kind {
			case data.KindInt:
				row[i] = v.I
			case data.KindFloat:
				row[i] = v.F
			case data.KindString:
				row[i] = v.S
			default:
				row[i] = nil
			}
		}
		out = append(out, row)
	}
}

// Columns returns the output column names.
func (q *Query) Columns() []string {
	cols := q.root.Schema().Cols
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Qualified()
	}
	return out
}

// Explain renders the plan tree with current estimates.
func (q *Query) Explain() string { return plan.Explain(q.root) }

// OperatorEstimate is a live view of one operator's counters.
type OperatorEstimate struct {
	// Operator is the EXPLAIN-style label ("HashJoin(a.k = b.k)").
	Operator string
	// Depth is the operator's depth in the plan tree (root = 0).
	Depth int
	// Emitted is the number of getnext() calls satisfied so far (K_i).
	Emitted int64
	// Estimate is the current belief about the operator's total output
	// cardinality (N_i).
	Estimate float64
	// Source is the estimate's provenance: "optimizer", "once",
	// "once-exact", "gee", "mle", "agg-pushdown", "exact".
	Source string
	// Done reports whether the operator has finished (Estimate exact).
	Done bool
}

// Estimates returns a live snapshot of every operator's cardinality
// estimate, in pre-order.
func (q *Query) Estimates() []OperatorEstimate {
	var out []OperatorEstimate
	var rec func(op exec.Operator, depth int)
	rec = func(op exec.Operator, depth int) {
		st := op.Stats()
		out = append(out, OperatorEstimate{
			Operator: q.labelOf(op),
			Depth:    depth,
			Emitted:  st.Emitted.Load(),
			Estimate: st.Total(),
			Source:   st.Source(),
			Done:     st.IsDone(),
		})
		for _, c := range op.Children() {
			rec(c, depth+1)
		}
	}
	rec(q.root, 0)
	return out
}

// Drift describes one operator whose online cardinality estimate has
// diverged from the optimizer's original belief — the signal the adaptive
// query processing literature the paper discusses ([16, 20, 2]) uses to
// trigger re-optimization.
type Drift struct {
	// Operator is the EXPLAIN-style label.
	Operator string
	// Optimizer is the estimate the plan was costed with.
	Optimizer float64
	// Current is the refined online estimate.
	Current float64
	// Factor is max(Current/Optimizer, Optimizer/Current) ≥ 1.
	Factor float64
}

// DriftReport returns the operators whose refined estimates differ from
// the optimizer's original estimates by at least factor (e.g. 2 means
// 2× in either direction), sorted by descending factor. A non-empty
// report on a running query is the classic re-optimization trigger: the
// plan was chosen with cardinalities now known to be wrong.
func (q *Query) DriftReport(factor float64) []Drift {
	if factor < 1 {
		factor = 1
	}
	var out []Drift
	exec.Walk(q.root, func(op exec.Operator) {
		st := op.Stats()
		opt := q.monitor.OptimizerEstimate(op)
		cur := st.Total()
		if opt <= 0 || cur <= 0 {
			return
		}
		// Only count beliefs actually refined by observation.
		if st.Source() == "optimizer" && !st.IsDone() {
			return
		}
		f := cur / opt
		if f < 1 {
			f = 1 / f
		}
		if f >= factor {
			out = append(out, Drift{
				Operator:  q.labelOf(op),
				Optimizer: opt,
				Current:   cur,
				Factor:    f,
			})
		}
	})
	sortDrifts(out)
	return out
}

func sortDrifts(ds []Drift) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Factor > ds[j-1].Factor; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// EstimateOf returns the live cardinality snapshot of the operator whose
// EXPLAIN-style label matches operatorLabel — the labels reported by
// Estimates() and Explain(), e.g. "HashJoin(a.k = b.k)". A unique exact
// match wins even when the label is also a substring of other labels;
// otherwise a substring that identifies exactly one operator (such as
// "HashJoin" in a single-join plan) resolves to it. The second result is
// false when no operator matches unambiguously — including when several
// operators share the exact label, e.g. two identical scans of the same
// table. The plan root is addressable by the empty string.
func (q *Query) EstimateOf(operatorLabel string) (OperatorEstimate, bool) {
	ests := q.Estimates()
	if operatorLabel == "" {
		return ests[0], true
	}
	var exact OperatorEstimate
	exactMatches := 0
	for _, e := range ests {
		if e.Operator == operatorLabel {
			if exactMatches == 0 {
				exact = e
			}
			exactMatches++
		}
	}
	if exactMatches == 1 {
		return exact, true
	}
	if exactMatches > 1 {
		return OperatorEstimate{}, false
	}
	var found OperatorEstimate
	matches := 0
	for _, e := range ests {
		if strings.Contains(e.Operator, operatorLabel) {
			found = e
			matches++
		}
	}
	if matches == 1 {
		return found, true
	}
	return OperatorEstimate{}, false
}

// PlanChange records one mid-query restructuring applied by the
// re-optimizer (WithReoptimization).
type PlanChange = plan.PlanChange

// ReoptStats is a snapshot of the re-optimizer's counters.
type ReoptStats = plan.ReoptStats

// PlanChanges returns the restructurings the re-optimizer applied
// during the run — empty without WithReoptimization, or when no
// evaluation found a sufficiently better unstarted shape. Labels
// reported by Estimates and EstimateOf are pinned at compile time, so
// they keep resolving across these changes.
func (q *Query) PlanChanges() []PlanChange {
	if q.reopt == nil {
		return nil
	}
	return q.reopt.Changes()
}

// ReoptStats returns the re-optimizer's counters (zero without
// WithReoptimization).
func (q *Query) ReoptStats() ReoptStats {
	if q.reopt == nil {
		return ReoptStats{}
	}
	return q.reopt.Stats()
}
