package qpi

import (
	"testing"
)

// estimateOfEngine builds a two-join plan whose labels exercise every
// EstimateOf resolution path: "Scan(r)" appears once, "Scan(s AS u)" and
// "Scan(s AS v)" give distinct labels over the same table, and
// "HashJoin" is a substring of two join labels.
func estimateOfEngine(t *testing.T) *Query {
	t.Helper()
	e := New()
	e.MustCreateSkewedTable("r", 300, 1,
		SkewedColumn{Name: "k", Domain: 40, Zipf: 0, PermSeed: 1})
	e.MustCreateSkewedTable("s", 200, 2,
		SkewedColumn{Name: "k", Domain: 40, Zipf: 0, PermSeed: 2})
	return e.MustQuery(
		"SELECT r.k FROM r JOIN s AS u ON r.k = u.k JOIN s AS v ON r.k = v.k")
}

func TestEstimateOfExactMatch(t *testing.T) {
	q := estimateOfEngine(t)
	for _, label := range []string{"Scan(r)", "Scan(s AS u)", "Scan(s AS v)"} {
		est, ok := q.EstimateOf(label)
		if !ok {
			t.Fatalf("EstimateOf(%q) not found", label)
		}
		if est.Operator != label {
			t.Fatalf("EstimateOf(%q) resolved to %q", label, est.Operator)
		}
	}
}

func TestEstimateOfExactMatchBeatsSubstring(t *testing.T) {
	// "Scan(s AS u)" is an exact label AND a substring of itself only,
	// but "Scan" alone is a substring of three operators: the exact
	// label must resolve while the bare substring must not.
	q := estimateOfEngine(t)
	if _, ok := q.EstimateOf("Scan"); ok {
		t.Fatal(`EstimateOf("Scan") resolved despite three scan operators`)
	}
	est, ok := q.EstimateOf("Scan(s AS u)")
	if !ok || est.Operator != "Scan(s AS u)" {
		t.Fatalf(`EstimateOf("Scan(s AS u)") = %+v, %v`, est, ok)
	}
}

func TestEstimateOfDuplicateExactLabelsAmbiguous(t *testing.T) {
	// Two scans of r without aliases produce two operators with the
	// byte-identical label "Scan(r)": resolving it must fail rather than
	// silently return whichever came first.
	e := New()
	e.MustCreateSkewedTable("r", 100, 1,
		SkewedColumn{Name: "k", Domain: 10, Zipf: 0, PermSeed: 1})
	// The SQL front end enforces unique aliases, so assemble the
	// ambiguous plan through the builder: two unaliased scans of r.
	left, err := e.Scan("r", "")
	if err != nil {
		t.Fatal(err)
	}
	right, err := e.Scan("r", "")
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(HashJoin(left, right, Col("r", "k"), Col("r", "k")))
	if err != nil {
		t.Fatal(err)
	}
	ests := q.Estimates()
	dup := 0
	for _, est := range ests {
		if est.Operator == "Scan(r)" {
			dup++
		}
	}
	if dup != 2 {
		t.Skipf("plan labels changed (%d copies of Scan(r)); update this test", dup)
	}
	if est, ok := q.EstimateOf("Scan(r)"); ok {
		t.Fatalf("EstimateOf of a duplicated label resolved to %+v", est)
	}
}

func TestEstimateOfUniqueSubstring(t *testing.T) {
	q := estimateOfEngine(t)
	est, ok := q.EstimateOf("AS v")
	if !ok || est.Operator != "Scan(s AS v)" {
		t.Fatalf(`EstimateOf("AS v") = %+v, %v, want Scan(s AS v)`, est, ok)
	}
}

func TestEstimateOfAmbiguousSubstring(t *testing.T) {
	q := estimateOfEngine(t)
	if est, ok := q.EstimateOf("HashJoin"); ok {
		t.Fatalf(`EstimateOf("HashJoin") resolved to %+v despite two joins`, est)
	}
}

func TestEstimateOfRootAndMisses(t *testing.T) {
	q := estimateOfEngine(t)
	est, ok := q.EstimateOf("")
	if !ok {
		t.Fatal(`EstimateOf("") did not resolve`)
	}
	if root := q.Estimates()[0]; est.Operator != root.Operator {
		t.Fatalf(`EstimateOf("") = %q, want root %q`, est.Operator, root.Operator)
	}
	if _, ok := q.EstimateOf("SortAgg"); ok {
		t.Fatal("EstimateOf of an absent operator resolved")
	}
}
