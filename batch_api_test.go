package qpi

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"
)

// raiseProcsAPI lifts GOMAXPROCS so the parallel scatter path runs
// multi-worker even on single-CPU machines.
func raiseProcsAPI(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

func sortedRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// TestWithBatchExecutionMatchesDefault compiles the same join plan in the
// default tuple mode and with WithBatchExecution, and demands identical
// result multisets, identical converged estimates, and final progress 1.
func TestWithBatchExecutionMatchesDefault(t *testing.T) {
	raiseProcsAPI(t, 4)
	run := func(opts ...CompileOption) ([][]any, float64, string, int64) {
		e := testEngine(t)
		j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
		q := e.MustCompile(j, opts...)
		rows, err := q.Rows()
		if err != nil {
			t.Fatal(err)
		}
		oe, _ := q.EstimateOf("")
		est, src := oe.Estimate, oe.Source
		return rows, est, src, int64(len(rows))
	}
	rows0, est0, src0, n0 := run()
	for _, workers := range []int{1, 4} {
		rows, est, src, n := run(WithBatchExecution(workers))
		if n != n0 {
			t.Fatalf("workers=%d: %d rows vs %d", workers, n, n0)
		}
		a, b := sortedRows(rows0), sortedRows(rows)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: row %d differs: %s vs %s", workers, i, a[i], b[i])
			}
		}
		if src != "once-exact" || src0 != "once-exact" {
			t.Errorf("workers=%d: sources %q vs %q", workers, src, src0)
		}
		if math.Abs(est-est0) > 1e-9*math.Abs(est0) {
			t.Errorf("workers=%d: estimate %g vs %g", workers, est, est0)
		}
	}
}

// TestWithBatchExecutionRunAndProgress drives Run with a progress callback
// in batch mode: the final report must show progress 1 and the converged
// exact estimate.
func TestWithBatchExecutionRunAndProgress(t *testing.T) {
	raiseProcsAPI(t, 4)
	e := testEngine(t)
	j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	q := e.MustCompile(j, WithBatchExecution(4))
	var last Report
	n, err := q.Run(nil, WithProgress(func(r Report) { last = r }, 500))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("join produced nothing")
	}
	if math.Abs(last.Progress-1) > 1e-9 {
		t.Errorf("final progress = %g", last.Progress)
	}
	oe, _ := q.EstimateOf("")
	est, src := oe.Estimate, oe.Source
	if est != float64(n) || src != "once-exact" {
		t.Errorf("estimate %g (%q) != rows %d", est, src, n)
	}
}

// TestWithBatchExecutionUnderMemoryBudget combines batching with a spill
// budget: the passes fall back to serial batched scatter and results stay
// identical to the default mode.
func TestWithBatchExecutionUnderMemoryBudget(t *testing.T) {
	run := func(opts ...CompileOption) int64 {
		e := testEngine(t)
		j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
		q := e.MustCompile(j, opts...)
		n, err := q.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain := run()
	budgeted := run(WithBatchExecution(4), WithMemoryBudget(32*1024))
	if plain != budgeted {
		t.Errorf("budgeted batch run: %d rows vs %d", budgeted, plain)
	}
}

// TestNodeParallel exercises the per-fragment builder knob: the joins run
// their partition passes batched while the plan is pulled tuple-at-a-time.
func TestNodeParallel(t *testing.T) {
	raiseProcsAPI(t, 4)
	e := testEngine(t)
	j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k")).Parallel(4)
	q := e.MustCompile(j)
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	e2 := testEngine(t)
	j2 := HashJoin(e2.MustScan("r"), e2.MustScan("s"), Col("r", "k"), Col("s", "k"))
	q2 := e2.MustCompile(j2)
	n2, err := q2.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != n2 {
		t.Errorf("Parallel plan: %d rows vs %d", n, n2)
	}
	oe, _ := q.EstimateOf("")
	est, src := oe.Estimate, oe.Source
	if src != "once-exact" || est != float64(n) {
		t.Errorf("estimate %g (%q) != %d", est, src, n)
	}
}

// TestSQLQueryBatched runs a SQL join + aggregation through the batch
// path end-to-end.
func TestSQLQueryBatched(t *testing.T) {
	raiseProcsAPI(t, 4)
	const sqlText = "SELECT r.k, COUNT(*) AS c FROM r JOIN s ON r.k = s.k GROUP BY r.k"
	e := testEngine(t)
	want, err := e.MustQuery(sqlText).Rows()
	if err != nil {
		t.Fatal(err)
	}
	e2 := testEngine(t)
	got, err := e2.MustQuery(sqlText, WithBatchExecution(4)).Rows()
	if err != nil {
		t.Fatal(err)
	}
	a, b := sortedRows(want), sortedRows(got)
	if len(a) != len(b) {
		t.Fatalf("%d groups vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("group %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
