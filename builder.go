package qpi

import (
	"fmt"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
)

// Node is one step of a physical plan under construction. Nodes are
// created by Engine.Scan and combined with the package-level join,
// filter, projection and grouping constructors; Engine.Compile turns the
// final node into an executable Query.
type Node struct {
	op  exec.Operator
	eng *Engine
}

// Ref names a column as table.column (the table part is the alias used in
// the scan).
type Ref struct {
	Table  string
	Column string
}

// Col builds a Ref; it reads well at call sites: qpi.Col("c", "nationkey").
func Col(table, column string) Ref { return Ref{Table: table, Column: column} }

func (r Ref) resolve(s *data.Schema) (int, error) {
	i := s.Resolve(r.Table, r.Column)
	if i < 0 {
		return 0, fmt.Errorf("qpi: column %s.%s not found in schema %s", r.Table, r.Column, s)
	}
	return i, nil
}

// Scan creates a table scan node. alias may be "" to keep the table name.
func (e *Engine) Scan(table, alias string) (*Node, error) {
	entry, err := e.cat.Lookup(table)
	if err != nil {
		return nil, err
	}
	return &Node{op: exec.NewScan(entry.Table, alias), eng: e}, nil
}

// MustScan is Scan with alias "" (or the optional alias), panicking on
// error.
func (e *Engine) MustScan(table string, alias ...string) *Node {
	a := ""
	if len(alias) > 0 {
		a = alias[0]
	}
	n, err := e.Scan(table, a)
	if err != nil {
		panic(err)
	}
	return n
}

// Cond is a filter condition resolved against a node's schema at build
// time.
type Cond struct {
	build func(s *data.Schema) (expr.Expr, error)
}

func cmpCond(op expr.CmpOp, col Ref, v any) Cond {
	return Cond{build: func(s *data.Schema) (expr.Expr, error) {
		idx, err := col.resolve(s)
		if err != nil {
			return nil, err
		}
		var lit data.Value
		switch x := v.(type) {
		case int:
			lit = data.Int(int64(x))
		case int64:
			lit = data.Int(x)
		case float64:
			lit = data.Float(x)
		case string:
			lit = data.Str(x)
		default:
			return nil, fmt.Errorf("qpi: unsupported literal type %T", v)
		}
		return expr.Compare(op, expr.Col{Index: idx, Name: col.Table + "." + col.Column}, expr.Lit(lit)), nil
	}}
}

// Eq builds column = literal.
func Eq(col Ref, v any) Cond { return cmpCond(expr.EQ, col, v) }

// Ne builds column <> literal.
func Ne(col Ref, v any) Cond { return cmpCond(expr.NE, col, v) }

// Lt builds column < literal.
func Lt(col Ref, v any) Cond { return cmpCond(expr.LT, col, v) }

// Le builds column <= literal.
func Le(col Ref, v any) Cond { return cmpCond(expr.LE, col, v) }

// Gt builds column > literal.
func Gt(col Ref, v any) Cond { return cmpCond(expr.GT, col, v) }

// Ge builds column >= literal.
func Ge(col Ref, v any) Cond { return cmpCond(expr.GE, col, v) }

// ColEq builds column = column.
func ColEq(a, b Ref) Cond {
	return Cond{build: func(s *data.Schema) (expr.Expr, error) {
		ia, err := a.resolve(s)
		if err != nil {
			return nil, err
		}
		ib, err := b.resolve(s)
		if err != nil {
			return nil, err
		}
		return expr.Compare(expr.EQ,
			expr.Col{Index: ia, Name: a.Table + "." + a.Column},
			expr.Col{Index: ib, Name: b.Table + "." + b.Column}), nil
	}}
}

// And conjoins conditions.
func And(conds ...Cond) Cond {
	return Cond{build: func(s *data.Schema) (expr.Expr, error) {
		terms := make([]expr.Expr, len(conds))
		for i, c := range conds {
			e, err := c.build(s)
			if err != nil {
				return nil, err
			}
			terms[i] = e
		}
		return expr.AndOf(terms...), nil
	}}
}

// Or disjoins conditions.
func Or(conds ...Cond) Cond {
	return Cond{build: func(s *data.Schema) (expr.Expr, error) {
		terms := make([]expr.Expr, len(conds))
		for i, c := range conds {
			e, err := c.build(s)
			if err != nil {
				return nil, err
			}
			terms[i] = e
		}
		return expr.OrOf(terms...), nil
	}}
}

// Filter applies a selection to the node.
func (n *Node) Filter(c Cond) (*Node, error) {
	e, err := c.build(n.op.Schema())
	if err != nil {
		return nil, err
	}
	return &Node{op: exec.NewFilter(n.op, e), eng: n.eng}, nil
}

// MustFilter is Filter, panicking on error.
func (n *Node) MustFilter(c Cond) *Node {
	out, err := n.Filter(c)
	if err != nil {
		panic(err)
	}
	return out
}

// Project keeps only the named columns.
func (n *Node) Project(cols ...Ref) (*Node, error) {
	pairs := make([][2]string, len(cols))
	for i, c := range cols {
		if _, err := c.resolve(n.op.Schema()); err != nil {
			return nil, err
		}
		pairs[i] = [2]string{c.Table, c.Column}
	}
	return &Node{op: exec.ProjectColumns(n.op, pairs...), eng: n.eng}, nil
}

// Limit keeps the first k rows.
func (n *Node) Limit(k int64) *Node {
	return &Node{op: exec.NewLimit(n.op, k), eng: n.eng}
}

// Parallel enables batch-at-a-time partition passes with the given number
// of scatter workers (GOMAXPROCS-capped) on every hash join in the node's
// subtree — the per-plan-fragment form of the WithBatchExecution compile
// option. It returns the node for chaining. Call before Compile so the
// estimators attach in sharded mode.
func (n *Node) Parallel(workers int) *Node {
	exec.Walk(n.op, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			j.SetParallelism(workers)
		}
	})
	return n
}

// HashJoin joins build ⋈ probe with a grace hash join on buildCol =
// probeCol. The output columns are the build columns followed by the
// probe columns. The probe side streams through the join, so chains of
// hash joins built by passing a HashJoin node as probe form a pipeline —
// the case where the framework pushes estimation for every join down to
// the bottom probe input (paper §4.1.4).
func HashJoin(build, probe *Node, buildCol, probeCol Ref) *Node {
	bi, err := buildCol.resolve(build.op.Schema())
	if err != nil {
		panic(err)
	}
	pi, err := probeCol.resolve(probe.op.Schema())
	if err != nil {
		panic(err)
	}
	return &Node{op: exec.NewHashJoin(build.op, probe.op, bi, pi), eng: build.eng}
}

// SortMergeJoin joins left ⋈ right with explicit sorts on both inputs.
func SortMergeJoin(left, right *Node, leftCol, rightCol Ref) *Node {
	li, err := leftCol.resolve(left.op.Schema())
	if err != nil {
		panic(err)
	}
	ri, err := rightCol.resolve(right.op.Schema())
	if err != nil {
		panic(err)
	}
	mj, _, _ := exec.NewSortMergeJoin(left.op, right.op, li, ri)
	return &Node{op: mj, eng: left.eng}
}

// IndexedNLJoin joins outer ⋈ inner with a nested-loops join over a
// temporary hash index on the inner join column.
func IndexedNLJoin(outer, inner *Node, outerCol, innerCol Ref) *Node {
	oi, err := outerCol.resolve(outer.op.Schema())
	if err != nil {
		panic(err)
	}
	ii, err := innerCol.resolve(inner.op.Schema())
	if err != nil {
		panic(err)
	}
	return &Node{op: exec.NewIndexedNLJoin(outer.op, inner.op, oi, ii), eng: outer.eng}
}

// AggFunc names an aggregate function for GroupBy.
type AggFunc string

// Aggregate functions.
const (
	CountStar AggFunc = "count(*)"
	Count     AggFunc = "count"
	Sum       AggFunc = "sum"
	Min       AggFunc = "min"
	Max       AggFunc = "max"
	Avg       AggFunc = "avg"
)

// Agg requests one aggregate column.
type Agg struct {
	Func AggFunc
	Col  Ref // ignored for CountStar
	As   string
}

// GroupBy groups the input by the given columns using hash aggregation.
func GroupBy(input *Node, groupBy []Ref, aggs ...Agg) (*Node, error) {
	gidx, specs, err := aggArgs(input, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &Node{op: exec.NewHashAgg(input.op, gidx, specs), eng: input.eng}, nil
}

// SortGroupBy groups the input using sort-based aggregation.
func SortGroupBy(input *Node, groupBy []Ref, aggs ...Agg) (*Node, error) {
	gidx, specs, err := aggArgs(input, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &Node{op: exec.NewSortAgg(input.op, gidx, specs), eng: input.eng}, nil
}

// MustGroupBy is GroupBy, panicking on error.
func MustGroupBy(input *Node, groupBy []Ref, aggs ...Agg) *Node {
	n, err := GroupBy(input, groupBy, aggs...)
	if err != nil {
		panic(err)
	}
	return n
}

func aggArgs(input *Node, groupBy []Ref, aggs []Agg) ([]int, []exec.AggSpec, error) {
	s := input.op.Schema()
	gidx := make([]int, len(groupBy))
	for i, g := range groupBy {
		idx, err := g.resolve(s)
		if err != nil {
			return nil, nil, err
		}
		gidx[i] = idx
	}
	specs := make([]exec.AggSpec, len(aggs))
	for i, a := range aggs {
		var f exec.AggFunc
		switch a.Func {
		case CountStar:
			f = exec.CountStar
		case Count:
			f = exec.Count
		case Sum:
			f = exec.Sum
		case Min:
			f = exec.Min
		case Max:
			f = exec.Max
		case Avg:
			f = exec.Avg
		default:
			return nil, nil, fmt.Errorf("qpi: unknown aggregate %q", a.Func)
		}
		spec := exec.AggSpec{Func: f, Name: a.As}
		if a.Func != CountStar {
			idx, err := a.Col.resolve(s)
			if err != nil {
				return nil, nil, err
			}
			spec.Col = idx
		}
		specs[i] = spec
	}
	return gidx, specs, nil
}

// Columns returns the node's output column names ("table.column").
func (n *Node) Columns() []string {
	cols := n.op.Schema().Cols
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Qualified()
	}
	return out
}
