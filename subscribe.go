package qpi

// subscribeBuffer is each Subscribe channel's capacity. A consumer that
// falls behind loses the oldest snapshots, never the terminal one.
const subscribeBuffer = 16

// Subscribe returns a channel of progress snapshots published at the
// run's work-based interval (see WithInterval), plus the terminal
// snapshot; the channel is closed when execution finishes. The channel
// is bounded: when a consumer falls behind, the oldest buffered snapshot
// is dropped so the stream always converges to the freshest state.
// Subscribe before starting the query; a subscription taken after the
// query finished receives only the terminal snapshot.
func (q *Query) Subscribe() <-chan Report {
	ch := make(chan Report, subscribeBuffer)
	q.subMu.Lock()
	defer q.subMu.Unlock()
	if q.subsDone {
		ch <- q.final
		close(ch)
		return ch
	}
	q.subs = append(q.subs, ch)
	return ch
}

// publishSubscribers delivers one snapshot to every subscriber,
// dropping each channel's oldest entry when its buffer is full. Called
// on the execution goroutine.
func (q *Query) publishSubscribers(rep Report) {
	q.subMu.Lock()
	defer q.subMu.Unlock()
	for _, ch := range q.subs {
		sendDropOldest(ch, rep)
	}
}

// closeSubscribers publishes the terminal snapshot and closes every
// subscriber channel. Idempotent.
func (q *Query) closeSubscribers(rep Report) {
	q.subMu.Lock()
	defer q.subMu.Unlock()
	if q.subsDone {
		return
	}
	q.subsDone = true
	q.final = rep
	for _, ch := range q.subs {
		sendDropOldest(ch, rep)
		close(ch)
	}
	q.subs = nil
}

func sendDropOldest(ch chan Report, rep Report) {
	select {
	case ch <- rep:
		return
	default:
	}
	// Full: evict the oldest snapshot. The publisher is the only sender,
	// so after one eviction the second send can only fail if the consumer
	// drained concurrently — in which case it succeeds anyway.
	select {
	case <-ch:
	default:
	}
	select {
	case ch <- rep:
	default:
	}
}
