package qpi

import (
	"context"
	"sync"
	"time"

	"qpi/internal/progress"
)

// Running is a query executing on a background goroutine. The execution
// goroutine publishes progress snapshots at work-based intervals; Progress
// and Report read the latest snapshot without racing the executor —
// exactly how an interactive progress indicator consumes the gnm model.
type Running struct {
	mu     sync.Mutex
	report progress.Report
	start  time.Time
	done   chan struct{}
	cancel context.CancelFunc
	rows   int64
	err    error
}

// Start launches the query on a new goroutine, publishing a progress
// snapshot approximately every `every` units of work (tuples moved
// anywhere in the plan; every < 1 defaults to 4096). A Query can be
// started (or run) only once, even under concurrent Start calls.
func (q *Query) Start(every int64) (*Running, error) {
	return q.StartContext(context.Background(), every)
}

// StartContext is Start bound to ctx: cancelling ctx (or calling
// Running.Cancel, which cancels a derived context) stops the query within
// one batch of work. The execution goroutine then unwinds every operator
// via Close — releasing spill files and buffered state — publishes a
// final snapshot whose State is "cancelled", and Wait returns
// context.Canceled (or context.DeadlineExceeded on an expired deadline).
func (q *Query) StartContext(ctx context.Context, every int64) (*Running, error) {
	if err := q.claim(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if every < 1 {
		every = 4096
	}
	ctx, cancel := context.WithCancel(ctx)
	r := &Running{done: make(chan struct{}), start: time.Now(), cancel: cancel}
	// The snapshot is taken on the execution goroutine (the monitor reads
	// operator counters that only that goroutine writes) and published
	// under the mutex.
	publish := func() {
		rep := q.monitor.Report()
		r.mu.Lock()
		r.report = rep
		r.mu.Unlock()
	}
	progress.InstallTicker(q.root, every, publish)
	go func() {
		defer close(r.done)
		defer cancel() // release the derived context's resources
		rows, err := execRun(ctx, q)
		publish() // terminal snapshot: State is done/cancelled/failed
		r.mu.Lock()
		r.rows, r.err = rows, err
		r.mu.Unlock()
	}()
	return r, nil
}

// Cancel stops the running query: execution returns context.Canceled
// within one batch of work and all operators unwind via Close. Idempotent
// and safe after completion.
func (r *Running) Cancel() { r.cancel() }

// Progress returns the latest published progress estimate in [0,1].
func (r *Running) Progress() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report.Progress
}

// Report returns the latest published snapshot. Once the query finishes,
// the snapshot's State is terminal: "done", "cancelled" or "failed".
func (r *Running) Report() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return toReport(r.report)
}

// ETA estimates the remaining execution time by combining the gnm work
// fractions with the observed work rate: remaining = elapsed·(T−C)/C.
// It returns (0, false) until enough work has been observed to
// extrapolate (C > 0), and (0, true) once done.
func (r *Running) ETA() (time.Duration, bool) {
	select {
	case <-r.done:
		return 0, true
	default:
	}
	r.mu.Lock()
	c, t := r.report.C, r.report.T
	r.mu.Unlock()
	if c <= 0 || t <= c {
		if c > 0 && t <= c {
			return 0, true
		}
		return 0, false
	}
	elapsed := time.Since(r.start)
	return time.Duration(float64(elapsed) * (t - c) / c), true
}

// Done returns a channel closed when execution finishes.
func (r *Running) Done() <-chan struct{} { return r.done }

// Wait blocks until the query completes and returns its row count. A
// cancelled query returns context.Canceled; an expired deadline returns
// context.DeadlineExceeded.
func (r *Running) Wait() (int64, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rows, r.err
}
