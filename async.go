package qpi

import (
	"context"
	"sync"
	"time"
)

// Running is a query executing on a background goroutine. It is a thin
// consumer of the query's Subscribe stream: the execution goroutine
// publishes snapshots at work-based intervals into the bounded
// subscription channel, and Progress/Report/ETA drain it on demand,
// retaining the freshest snapshot. Draining on read (rather than on a
// background goroutine) keeps mid-flight progress deterministically
// visible: whatever the executor has published is observable
// immediately, regardless of scheduling.
type Running struct {
	mu      sync.Mutex
	sub     <-chan Report
	subOpen bool
	report  Report
	start   time.Time
	done    chan struct{}
	cancel  context.CancelFunc
	rows    int64
	err     error
}

// Start launches the query on a new goroutine. Options compose exactly
// as in Run: WithProgress, WithInterval, WithTrace, WithMetrics.
// Cancelling ctx (or calling Running.Cancel, which cancels a derived
// context) stops the query within one batch of work; the execution
// goroutine then unwinds every operator via Close — releasing spill
// files and buffered state — publishes a final snapshot whose State is
// "cancelled", and Wait returns context.Canceled (or
// context.DeadlineExceeded on an expired deadline). A Query can be
// started (or run) only once, even under concurrent Start calls. A nil
// ctx means context.Background().
func (q *Query) Start(ctx context.Context, opts ...RunOption) (*Running, error) {
	if err := q.claim(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	r := &Running{
		sub:     q.Subscribe(),
		subOpen: true,
		done:    make(chan struct{}),
		start:   time.Now(),
		cancel:  cancel,
	}
	cfg := newRunCfg(opts)
	q.installObservability(&cfg)
	go func() {
		defer close(r.done)
		defer cancel() // release the derived context's resources
		rows, err := execRun(ctx, q)
		r.mu.Lock()
		r.rows, r.err = rows, err
		r.mu.Unlock()
		// Terminal snapshot: published to the subscription (and any other
		// subscribers) before done closes, so Wait-then-Report always sees
		// the terminal state.
		q.finishRun(&cfg)
	}()
	return r, nil
}

// latest drains every snapshot buffered in the subscription and returns
// the freshest one. Caller holds r.mu.
func (r *Running) latest() Report {
	for r.subOpen {
		select {
		case rep, ok := <-r.sub:
			if !ok {
				r.subOpen = false
			} else {
				r.report = rep
			}
		default:
			return r.report
		}
	}
	return r.report
}

// Cancel stops the running query: execution returns context.Canceled
// within one batch of work and all operators unwind via Close. Idempotent
// and safe after completion.
func (r *Running) Cancel() { r.cancel() }

// Progress returns the latest published progress estimate in [0,1].
func (r *Running) Progress() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest().Progress
}

// Report returns the latest published snapshot. Once the query finishes,
// the snapshot's State is terminal: "done", "cancelled" or "failed".
func (r *Running) Report() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest()
}

// ETA estimates the remaining execution time by combining the gnm work
// fractions with the observed work rate: remaining = elapsed·(T−C)/C.
// It returns (0, false) until enough work has been observed to
// extrapolate (C > 0), and (0, true) once done.
func (r *Running) ETA() (time.Duration, bool) {
	select {
	case <-r.done:
		return 0, true
	default:
	}
	r.mu.Lock()
	rep := r.latest()
	r.mu.Unlock()
	c, t := rep.C, rep.T
	if c <= 0 || t <= c {
		if c > 0 && t <= c {
			return 0, true
		}
		return 0, false
	}
	elapsed := time.Since(r.start)
	return time.Duration(float64(elapsed) * (t - c) / c), true
}

// Done returns a channel closed when execution finishes and the terminal
// snapshot has been published.
func (r *Running) Done() <-chan struct{} { return r.done }

// Wait blocks until the query completes and returns its row count. A
// cancelled query returns context.Canceled; an expired deadline returns
// context.DeadlineExceeded.
func (r *Running) Wait() (int64, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rows, r.err
}
