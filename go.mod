module qpi

go 1.22
