module qpi

go 1.24
