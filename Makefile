GO ?= go

.PHONY: build test vet race check leakcheck serve-check reopt-check bench-join bench-columnar bench-matrix bench-serve bench-guard lint-deprecated fuzz cover

build:
	$(GO) build ./...

# A hung cancellation path would otherwise stall CI forever; every test
# invocation gets a hard timeout.
test:
	$(GO) test -timeout 120s ./...

vet:
	$(GO) vet ./...

# The parallel grace partition passes, the morsel-driven scan workers
# and the data.BatchSize knob writes (TestBatchSizeKnobStartRace) all run
# under the race detector here; this is the gate CI runs (vet + plain
# tests + race tests).
race:
	$(GO) test -race -timeout 120s ./...

# Repeatedly run the cancellation / fault-injection / lifecycle suite
# under the race detector: leaked goroutines, unreleased spill
# descriptors and claim races show up here before they flake elsewhere.
leakcheck:
	$(GO) test -race -count=3 -timeout 120s \
		-run 'Cancel|SpillFault|FaultFS|CloseErrors|StartRace|Leak' \
		./internal/exec/ ./internal/vfs/ .

# The qpi-server service layer under the race detector: admission
# governor stress (grant-sum invariant), plan-cache concurrency,
# httptest-driven endpoint lifecycle, and the churn goroutine/FD leak
# check. `make race` covers these too; this is the focused gate for
# service work.
serve-check:
	$(GO) test -race -count=1 -timeout 300s ./internal/service/
	$(GO) test -race -count=1 -timeout 300s -run 'TestPrepare|TestWithSpillFS|TestServe' .

# The pre-option-style entry points (RunContext/StartContext) are
# removed from the API; nothing anywhere in the repo may reference them,
# so stray revivals in merges get caught here.
lint-deprecated:
	@bad=$$(grep -rn --include='*.go' -E '\.(RunContext|StartContext)\(' . || true); \
	if [ -n "$$bad" ]; then \
		echo "removed Run/Start signatures referenced:"; \
		echo "$$bad"; \
		exit 1; \
	fi

# Short exploratory runs of every fuzz target (go permits one -fuzz
# pattern per invocation). The corpus seeds under testdata/ run as plain
# regression tests in `make test`; this adds a few seconds of new input
# search per target.
FUZZTIME ?= 3s
fuzz:
	$(GO) test -fuzz '^FuzzParse$$'        -fuzztime $(FUZZTIME) -timeout 120s ./internal/sql/
	$(GO) test -fuzz '^FuzzChooser$$'      -fuzztime $(FUZZTIME) -timeout 120s ./internal/distinct/
	$(GO) test -fuzz '^FuzzJoinModes$$'    -fuzztime $(FUZZTIME) -timeout 120s ./internal/exec/
	$(GO) test -fuzz '^FuzzOnceExact$$'    -fuzztime $(FUZZTIME) -timeout 120s ./internal/core/
	$(GO) test -fuzz '^FuzzSketchMerge$$'  -fuzztime $(FUZZTIME) -timeout 120s ./internal/sketch/
	$(GO) test -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME) -timeout 180s ./internal/difftest/
	$(GO) test -fuzz '^FuzzQueryModes$$'   -fuzztime $(FUZZTIME) -timeout 120s .

# Statement-coverage floors on the estimator packages (measured ~88% and
# ~90%; floors sit a few points below so refactors don't flake, but a
# real coverage regression fails the build).
cover:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover -timeout 120s $$1 | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		echo "$$1 coverage: $$pct% (floor $$2%)"; \
		ok=$$(echo "$$pct $$2" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "coverage below floor"; exit 1; fi; \
	}; \
	check ./internal/core 82; \
	check ./internal/distinct 84; \
	check ./internal/sketch 75

# BENCH_GUARD=1 adds the join-throughput regression guard to `make
# check`. It is opt-in because wall-clock benchmarks only mean something
# on a machine comparable to the one that recorded BENCH_join.json (and
# are pure noise on loaded CI runners).
# The mid-query re-optimization gate: the differential suite (whose
# reopt / reopt-morsel modes force restructurings over all generated
# plans and dual-oracle-check every one), then the restructure timing
# and barrier tests — concurrent RequestReopt hammering, monitor
# refresh during restructure, public-API label stability — twice each
# under the race detector.
reopt-check:
	$(GO) test -timeout 180s -run TestDifferentialSuite ./internal/difftest/
	$(GO) test -race -count=2 -timeout 300s -run 'Reopt|Robust|MonitorRefresh' \
		./internal/plan/ ./internal/progress/ .

ifeq ($(BENCH_GUARD),1)
check: vet lint-deprecated test race cover fuzz reopt-check bench-guard
else
check: vet lint-deprecated test race cover fuzz reopt-check
endif

# Measure the join execution modes (tuple / serial batch / columnar /
# parallel join phase at several worker counts) plus the batch-size
# sweep, and write BENCH_join.json.
bench-join:
	$(GO) run ./cmd/qpi-bench -json

# Just the two single-threaded span-at-a-time modes (batch, columnar)
# plus the batch-size sweep — the quick columnar-vs-batch comparison,
# printed without rewriting BENCH_join.json.
bench-columnar:
	$(GO) run ./cmd/qpi-bench -json -json-file /dev/null -modes batch,columnar

# The SF-scaled worker matrix: serial vs morsel-driven scans at SF 0.1
# and 1, worker sweep {1,2,4,NumCPU}. Generated tables are cached under
# testdata/benchcache/ (gitignored) so re-runs skip the ~minute of SF 1
# generation. Rewrites BENCH_join.json including the sf_matrix section.
bench-matrix:
	$(GO) run ./cmd/qpi-bench -json -matrix

# Drive qpi-server with 1000 concurrent HTTP streams for 10s and record
# throughput, latency percentiles, plan-cache hit rate and admission
# behaviour into BENCH_serve.json. The run also enforces the hard
# invariants (no goroutine/FD leaks, grant sum bounded by the budget).
bench-serve:
	$(GO) run ./cmd/qpi-loadtest -json

# Re-measure those modes and fail on a >15% ns/op or allocs/op
# regression against the committed BENCH_join.json (the tolerance is
# documented next to the environment check in cmd/qpi-bench), after
# failing loudly when the current cpu/num_cpu/gomaxprocs don't match the
# baseline's recorded environment. Parallel/morsel modes wider than
# GOMAXPROCS are refused loudly, never silently passed: time-sliced
# "parallel" timings are artifacts. Add -matrix to validate the recorded
# sf_matrix cells too.
# The serve guard re-drives the load test and compares throughput/p99
# against BENCH_serve.json with a wide (50%) tolerance — serving numbers
# are noisier than microbenchmarks — after the same environment check;
# on foreign hardware it skips loudly instead of guarding noise.
bench-guard:
	$(GO) run ./cmd/qpi-bench -guard
	$(GO) run ./cmd/qpi-loadtest -guard
