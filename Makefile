GO ?= go

.PHONY: build test vet race check leakcheck bench-join lint-deprecated

build:
	$(GO) build ./...

# A hung cancellation path would otherwise stall CI forever; every test
# invocation gets a hard timeout.
test:
	$(GO) test -timeout 120s ./...

vet:
	$(GO) vet ./...

# The parallel grace partition passes run under the race detector here;
# this is the gate CI runs (vet + plain tests + race tests).
race:
	$(GO) test -race -timeout 120s ./...

# Repeatedly run the cancellation / fault-injection / lifecycle suite
# under the race detector: leaked goroutines, unreleased spill
# descriptors and claim races show up here before they flake elsewhere.
leakcheck:
	$(GO) test -race -count=3 -timeout 120s \
		-run 'Cancel|SpillFault|FaultFS|CloseErrors|StartRace|Leak' \
		./internal/exec/ ./internal/vfs/ .

# Examples and commands must not use the deprecated pre-option-style
# entry points (RunContext/StartContext); they exist only as migration
# wrappers and tests of wrapper behaviour.
lint-deprecated:
	@bad=$$(grep -rn --include='*.go' -E '\.(RunContext|StartContext)\(' examples cmd || true); \
	if [ -n "$$bad" ]; then \
		echo "deprecated Run/Start signatures in examples or commands:"; \
		echo "$$bad"; \
		exit 1; \
	fi

check: vet lint-deprecated test race

# Measure the join execution modes (tuple / batch / batch-parallel) and
# write BENCH_join.json.
bench-join:
	$(GO) run ./cmd/qpi-bench -json
