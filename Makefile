GO ?= go

.PHONY: build test vet race check bench-join

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel grace partition passes run under the race detector here;
# this is the gate CI runs (vet + plain tests + race tests).
race:
	$(GO) test -race ./...

check: vet test race

# Measure the join execution modes (tuple / batch / batch-parallel) and
# write BENCH_join.json.
bench-join:
	$(GO) run ./cmd/qpi-bench -json
