package qpi

// One benchmark per paper table/figure (regenerating the experiment at a
// reduced scale; use cmd/qpi-bench -paper for full scale) plus ablation
// benchmarks for the design choices called out in DESIGN.md §7.

import (
	"math/rand"
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/disk"
	"qpi/internal/distinct"
	"qpi/internal/exec"
	"qpi/internal/experiments"
	"qpi/internal/plan"
	"qpi/internal/tpch"
	"qpi/internal/zipf"
)

// benchConfig is small enough for -bench runs yet large enough that the
// estimators do real work.
func benchConfig() experiments.Config {
	return experiments.Config{
		Rows:           10000,
		DomainSmall:    500,
		DomainLarge:    8000,
		SF:             0.008,
		SampleFraction: 0.10,
		Seed:           42,
		Checkpoints:    []float64{0.05, 0.10, 0.50, 1.00},
	}
}

func runExperiment(b *testing.B, name string) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3BinaryJoinAccuracy regenerates Figure 3 (once ratio error
// on binary joins, small and large domains, z ∈ {0,1,2}).
func BenchmarkFig3BinaryJoinAccuracy(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4BaselineComparison regenerates Figure 4 (once vs dne vs
// byte on a misestimated skewed join and a PK-FK join with selection).
func BenchmarkFig4BaselineComparison(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5SameAttributePipeline regenerates Figure 5 (two-join
// pipeline on one attribute, both levels' estimates).
func BenchmarkFig5SameAttributePipeline(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6DifferentAttributePipeline regenerates Figure 6 (Case 1
// and Case 2 pipelines with derived histograms).
func BenchmarkFig6DifferentAttributePipeline(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable1DistinctEstimators regenerates Table 1 (GEE vs MLE
// rows-to-accuracy across skews and domain sizes).
func BenchmarkTable1DistinctEstimators(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2HistogramMemory regenerates Table 2 (histogram memory
// accounting).
func BenchmarkTable2HistogramMemory(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3JoinOverhead regenerates Table 3 (join runtime with and
// without the framework at 1/5/10% samples, hash and sort-merge).
func BenchmarkTable3JoinOverhead(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4PipelineAndAggOverhead regenerates Table 4 (pipeline
// Case 1/2 overhead and GROUP BY overhead under GEE/MLE).
func BenchmarkTable4PipelineAndAggOverhead(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig8ProgressIndicator regenerates Figure 8 (once vs dne
// progress trajectories on a Q8-shaped plan).
func BenchmarkFig8ProgressIndicator(b *testing.B) { runExperiment(b, "fig8") }

// ---- overhead microbenchmarks (Table 3's mechanism, isolated) ----

func buildJoin(b *testing.B, estimate bool) (*exec.HashJoin, *catalog.Catalog) {
	b.Helper()
	cat, err := tpch.Generate(tpch.Config{SF: 0.01, Seed: 1, Tables: []string{"orders", "lineitem"}})
	if err != nil {
		b.Fatal(err)
	}
	orders := cat.MustLookup("orders").Table
	lineitem := cat.MustLookup("lineitem").Table
	bs := exec.NewScan(orders, "")
	ps := exec.NewScan(lineitem, "")
	j := exec.NewHashJoin(bs, ps,
		bs.Schema().MustResolve("orders", "orderkey"),
		ps.Schema().MustResolve("lineitem", "orderkey"))
	plan.EstimateCardinalities(j, cat)
	if estimate {
		core.Attach(j)
	}
	return j, cat
}

// BenchmarkJoinBaseline measures the raw grace hash join (no estimation).
func BenchmarkJoinBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j, _ := buildJoin(b, false)
		b.StartTimer()
		if _, err := exec.Run(j); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoinThroughput compares the execution modes of the grace
// hash join on the same orders ⋈ lineitem workload as BenchmarkJoinBaseline:
// the seed tuple-at-a-time path, the batched serial path (1 worker), and
// the batched path with parallel scatter workers. tuples/sec counts every
// tuple moved (build + probe inputs and join output).
func BenchmarkHashJoinThroughput(b *testing.B) {
	modes := []struct {
		name    string
		workers int
	}{
		{"tuple", 0},
		{"batch", 1},
		{"batch-parallel", 4},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			// Workers are GOMAXPROCS-capped: on a single-CPU machine the
			// batch-parallel mode degrades gracefully to the serial batched
			// pass instead of paying goroutine overhead for no parallelism.
			b.ReportAllocs()
			var tuples int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				j, _ := buildJoin(b, false)
				if m.workers > 0 {
					j.SetParallelism(m.workers)
				}
				b.StartTimer()
				var n int64
				var err error
				if m.workers > 0 {
					n, err = exec.RunBatch(j)
				} else {
					n, err = exec.Run(j)
				}
				if err != nil {
					b.Fatal(err)
				}
				tuples += n + j.BuildRows() + j.ProbeRows()
			}
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// BenchmarkJoinWithEstimation measures the same join with the framework
// attached; compare ns/op against BenchmarkJoinBaseline for the paper's
// central overhead claim.
func BenchmarkJoinWithEstimation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j, _ := buildJoin(b, true)
		b.StartTimer()
		if _, err := exec.Run(j); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations ----

// BenchmarkAblationIncrementalUpdate compares the paper's O(1)
// incremental estimate update (§4.1.1) against the naive alternative it
// replaces: maintaining histograms on both inputs and multiplying
// corresponding buckets at an interval.
func BenchmarkAblationIncrementalUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, domain = 200000, 5000
	buildKeys := make([]data.Value, n)
	probeKeys := make([]data.Value, n)
	for i := range buildKeys {
		buildKeys[i] = data.Int(int64(rng.Intn(domain)))
		probeKeys[i] = data.Int(int64(rng.Intn(domain)))
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := core.NewJoinEstimator(n)
			for _, k := range buildKeys {
				e.ObserveBuild(k)
			}
			for _, k := range probeKeys {
				e.ObserveProbe(k)
			}
		}
	})
	b.Run("bucket-multiply", func(b *testing.B) {
		b.ReportAllocs()
		const interval = 1000
		for i := 0; i < b.N; i++ {
			bh := core.NewFreqHistogram()
			ph := core.NewFreqHistogram()
			for _, k := range buildKeys {
				bh.Add(k)
			}
			est := 0.0
			for t, k := range probeKeys {
				ph.Add(k)
				if (t+1)%interval == 0 {
					// Multiply corresponding buckets — the cost the
					// incremental form avoids.
					sum := 0.0
					ph.Each(func(v data.Value, c int64) bool {
						sum += float64(c) * float64(bh.Count(v))
						return true
					})
					est = sum / float64(t+1) * n
				}
			}
			_ = est
		}
	})
}

// BenchmarkAblationMLEInterval compares Algorithm 3's adaptive
// recomputation interval against fixed intervals.
func BenchmarkAblationMLEInterval(b *testing.B) {
	g := zipf.MustNew(5000, 0, 3, 0)
	const n = 100000
	vals := make([]data.Value, n)
	for i := range vals {
		vals[i] = data.Int(g.Next())
	}
	b.Run("adaptive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := distinct.NewMLE(n)
			for _, v := range vals {
				m.Observe(v)
			}
			_ = m.Estimate()
		}
	})
	b.Run("fixed-small", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := distinct.NewMLEWithInterval(n, 100, 100, 0)
			for _, v := range vals {
				m.Observe(v)
			}
			_ = m.Estimate()
		}
	})
	b.Run("fixed-large", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := distinct.NewMLEWithInterval(n, 10000, 10000, 0)
			for _, v := range vals {
				m.Observe(v)
			}
			_ = m.Estimate()
		}
	})
}

// BenchmarkAblationChooser compares GEE-only, MLE-only and the γ² chooser
// on a low-skew stream (where they differ most).
func BenchmarkAblationChooser(b *testing.B) {
	g := zipf.MustNew(3000, 0, 9, 0)
	const n = 100000
	vals := make([]data.Value, n)
	for i := range vals {
		vals[i] = data.Int(g.Next())
	}
	b.Run("gee", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := distinct.NewGEE(n)
			for _, v := range vals {
				e.Observe(v)
			}
			_ = e.Estimate()
		}
	})
	b.Run("mle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := distinct.NewMLE(n)
			for _, v := range vals {
				e.Observe(v)
			}
			_ = e.Estimate()
		}
	})
	b.Run("chooser", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := distinct.NewChooser(n, distinct.DefaultTau)
			for _, v := range vals {
				e.Observe(v)
			}
			_ = e.Estimate()
		}
	})
}

// BenchmarkHistogram measures the core per-tuple histogram operations the
// lightweight claim rests on.
func BenchmarkHistogram(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	keys := make([]data.Value, 100000)
	for i := range keys {
		keys[i] = data.Int(int64(rng.Intn(10000)))
	}
	b.Run("add", func(b *testing.B) {
		b.ReportAllocs()
		h := core.NewFreqHistogram()
		for i := 0; i < b.N; i++ {
			h.Add(keys[i%len(keys)])
		}
	})
	b.Run("count", func(b *testing.B) {
		h := core.NewFreqHistogram()
		for _, k := range keys {
			h.Add(k)
		}
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += h.Count(keys[i%len(keys)])
		}
		_ = sink
	})
}

// BenchmarkProgressSnapshot measures the cost of one monitor snapshot on
// a Q8-sized plan — what a UI pays per refresh.
func BenchmarkProgressSnapshot(b *testing.B) {
	eng := New()
	eng.MustLoadTPCH(TPCHConfig{SF: 0.002, Seed: 1})
	jRN := HashJoin(eng.MustScan("region"), eng.MustScan("nation", "n1"),
		Col("region", "regionkey"), Col("n1", "regionkey"))
	jRNC := HashJoin(jRN, eng.MustScan("customer"),
		Col("n1", "nationkey"), Col("customer", "nationkey"))
	ordersSub := HashJoin(jRNC, eng.MustScan("orders"),
		Col("customer", "custkey"), Col("orders", "custkey"))
	j3 := HashJoin(ordersSub, eng.MustScan("lineitem"),
		Col("orders", "orderkey"), Col("lineitem", "orderkey"))
	q := eng.MustCompile(j3)
	if _, err := q.Run(nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.Report()
	}
}

// BenchmarkExtApproxHistograms regenerates the approximate-histogram
// accuracy/memory extension experiment (§6 future work).
func BenchmarkExtApproxHistograms(b *testing.B) { runExperiment(b, "ext-approx") }

// BenchmarkExtDiskJoinOverhead regenerates the on-disk join overhead
// extension experiment (I/O-bound baseline, as in the paper's setting).
func BenchmarkExtDiskJoinOverhead(b *testing.B) { runExperiment(b, "ext-disk") }

// BenchmarkSpilledJoin measures the grace hash join in memory-budgeted
// (spilling) mode against BenchmarkJoinBaseline.
func BenchmarkSpilledJoin(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j, _ := buildJoin(b, false)
		j.SetMemoryBudget(256 * 1024)
		b.StartTimer()
		if _, err := exec.Run(j); err != nil {
			b.Fatal(err)
		}
		if j.Spilled() == 0 {
			b.Fatal("expected spills")
		}
	}
}

// BenchmarkDiskScan measures streaming a table from the on-disk block
// format.
func BenchmarkDiskScan(b *testing.B) {
	cat, err := tpch.Generate(tpch.Config{SF: 0.01, Seed: 1, Tables: []string{"orders"}})
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/orders.qpit"
	if err := disk.WriteTable(path, cat.MustLookup("orders").Table); err != nil {
		b.Fatal(err)
	}
	tf, err := disk.OpenTable(path)
	if err != nil {
		b.Fatal(err)
	}
	defer tf.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := disk.NewScan(tf, "")
		if _, err := exec.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}
