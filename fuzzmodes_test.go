package qpi

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// End-to-end mode equivalence at the public API: the same compiled plan
// over the same tables must return the same result multiset whether it
// runs tuple-at-a-time, batched, or batched with parallel partition
// passes. This is the user-visible face of the differential suite in
// internal/difftest.

func fuzzEngine(t testing.TB, seed int64, rows, dom int) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := New()
	for _, name := range []string{"r", "s"} {
		tb, err := e.CreateTable(name,
			ColumnDef{Name: "k", Type: "int"},
			ColumnDef{Name: "v", Type: "int"},
		)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(rows)
		for i := 0; i < n; i++ {
			var k any
			if rng.Float64() < 0.15 {
				k = nil
			} else {
				k = rng.Intn(dom)
			}
			if err := tb.Insert(k, rng.Intn(8)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Analyze(name); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func rowsMultiset(t testing.TB, q *Query) []string {
	t.Helper()
	rows, err := q.Rows()
	if err != nil {
		t.Fatalf("Rows: %v", err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r...)
	}
	sort.Strings(out)
	return out
}

func checkQueryModes(t *testing.T, seed int64, rows, dom int, sql string) {
	t.Helper()
	e := fuzzEngine(t, seed, rows, dom)
	want := rowsMultiset(t, e.MustQuery(sql))
	for _, opt := range []struct {
		name string
		co   []CompileOption
	}{
		{"batch", []CompileOption{WithBatchExecution(0)}},
		{"parallel", []CompileOption{WithBatchExecution(2)}},
		{"spill", []CompileOption{WithMemoryBudget(128)}},
	} {
		got := rowsMultiset(t, e.MustQuery(sql, opt.co...))
		if len(got) != len(want) {
			t.Fatalf("seed %d %s: %d rows, tuple mode had %d", seed, opt.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d %s: row %d = %q, tuple mode had %q", seed, opt.name, i, got[i], want[i])
			}
		}
	}
}

const fuzzModesSQL = "SELECT r.k, s.v FROM r JOIN s ON r.k = s.k"

func TestQueryModesEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		checkQueryModes(t, seed, 200, 1+int(seed)*5, fuzzModesSQL)
	}
	// And with grouping on top.
	for seed := int64(1); seed <= 6; seed++ {
		checkQueryModes(t, seed, 150, 12,
			"SELECT r.k, COUNT(*), SUM(s.v) FROM r JOIN s ON r.k = s.k GROUP BY r.k")
	}
}

func FuzzQueryModes(f *testing.F) {
	f.Add(int64(3), 80, 10)
	f.Add(int64(8), 200, 3)
	f.Fuzz(func(t *testing.T, seed int64, rows, dom int) {
		if rows < 1 || rows > 400 || dom < 1 || dom > 100 {
			t.Skip("out of bounds")
		}
		checkQueryModes(t, seed, rows, dom, fuzzModesSQL)
	})
}
